//! Conditional XPath over ordered trees — the expressiveness side of
//! the paper's Lemma 3.1.
//!
//! The paper proves (citing Lai \[16\] and Marx \[21\]) that LPath's
//! `immediate-following`, `immediate-preceding`, their sibling variants,
//! and subtree scoping **cannot** be expressed in Core XPath — but the
//! first two *can* once XPath is extended with *conditional axes*, the
//! extension Marx showed to be exactly first-order complete
//! (*Conditional XPath*, PODS 2004).
//!
//! This crate implements Marx's language over the same [`Tree`]s the
//! rest of the workspace uses:
//!
//! * the four **one-step** relations of the ordered-tree signature —
//!   [`Step::Down`] (parent→child), [`Step::Up`], [`Step::Right`]
//!   (next sibling), [`Step::Left`];
//! * **path expressions** ([`PathExpr`]): steps filtered by node tests
//!   and conditions, composition, union, and the *conditional closure*
//!   `(step[φ])+` that separates Conditional XPath from Core XPath;
//! * **node conditions** ([`NodeCond`]): boolean combinations of path
//!   existence and label tests.
//!
//! The headline constructions — with differential tests against the
//! LPath engine in `tests/` and here — are
//! [`immediate_following`], [`immediate_preceding`],
//! [`immediate_following_sibling`] and [`immediate_preceding_sibling`]:
//! Conditional XPath expressions provably (and here, empirically)
//! equivalent to the LPath axes `->`, `<-`, `=>`, `<=`.
//!
//! The converse — that no Core XPath expression matches `->` — is an
//! inexpressibility result and cannot be established by testing alone;
//! [`core_xpath_queries_up_to`] supports a finite refutation in the
//! test suite: every Core XPath query up to a bounded size disagrees
//! with `//V->NP` on a family of witness trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lpath_model::{NodeId, Sym, Tree};

/// A one-step relation of Marx's ordered-tree signature.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// One edge downward: parent → each child.
    Down,
    /// One edge upward: child → parent.
    Up,
    /// The immediately next sibling.
    Right,
    /// The immediately previous sibling.
    Left,
}

impl Step {
    /// All four primitive steps.
    pub const ALL: [Step; 4] = [Step::Down, Step::Up, Step::Right, Step::Left];

    /// Targets of one step from `n`.
    fn apply(self, tree: &Tree, n: NodeId) -> Vec<NodeId> {
        match self {
            Step::Down => tree.node(n).children.clone(),
            Step::Up => tree.node(n).parent.into_iter().collect(),
            Step::Right => tree.next_sibling(n).into_iter().collect(),
            Step::Left => tree.prev_sibling(n).into_iter().collect(),
        }
    }
}

/// A node test: any node, or a specific (interned) tag.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Test {
    /// Any node.
    Any,
    /// A node carrying this tag.
    Tag(Sym),
}

impl Test {
    fn holds(self, tree: &Tree, n: NodeId) -> bool {
        match self {
            Test::Any => true,
            Test::Tag(sym) => tree.node(n).name == sym,
        }
    }
}

/// A node condition (Marx's φ): boolean combinations of path existence
/// and label tests, evaluated at a single node.
#[derive(Clone, Debug)]
pub enum NodeCond {
    /// Always true.
    True,
    /// The node satisfies a label test.
    Is(Test),
    /// Some path match exists from this node.
    Exists(Box<PathExpr>),
    /// Negation.
    Not(Box<NodeCond>),
    /// Conjunction.
    And(Box<NodeCond>, Box<NodeCond>),
    /// Disjunction.
    Or(Box<NodeCond>, Box<NodeCond>),
}

impl NodeCond {
    /// `∃ p` — some match of `p` from this node.
    pub fn exists(p: PathExpr) -> Self {
        NodeCond::Exists(Box::new(p))
    }

    /// `¬ c` (named after the logic, not `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(c: NodeCond) -> Self {
        NodeCond::Not(Box::new(c))
    }

    /// `a ∧ b`.
    pub fn and(a: NodeCond, b: NodeCond) -> Self {
        NodeCond::And(Box::new(a), Box::new(b))
    }

    /// `a ∨ b`.
    pub fn or(a: NodeCond, b: NodeCond) -> Self {
        NodeCond::Or(Box::new(a), Box::new(b))
    }

    /// "This node has no next sibling" — it is the last child (or the
    /// root).
    pub fn is_last_child() -> Self {
        NodeCond::not(NodeCond::exists(PathExpr::step(Step::Right)))
    }

    /// "This node has no previous sibling".
    pub fn is_first_child() -> Self {
        NodeCond::not(NodeCond::exists(PathExpr::step(Step::Left)))
    }

    fn holds(&self, tree: &Tree, n: NodeId) -> bool {
        match self {
            NodeCond::True => true,
            NodeCond::Is(t) => t.holds(tree, n),
            NodeCond::Exists(p) => !p.eval(tree, n).is_empty(),
            NodeCond::Not(c) => !c.holds(tree, n),
            NodeCond::And(a, b) => a.holds(tree, n) && b.holds(tree, n),
            NodeCond::Or(a, b) => a.holds(tree, n) || b.holds(tree, n),
        }
    }
}

/// A Conditional XPath path expression.
#[derive(Clone, Debug)]
pub enum PathExpr {
    /// One step whose **target** must satisfy the test and condition.
    Atom {
        /// The primitive step relation.
        step: Step,
        /// Label test on the target node.
        test: Test,
        /// Condition on the target node.
        cond: Box<NodeCond>,
    },
    /// Stay put, keeping nodes satisfying the condition (Marx's `?φ`).
    Filter(Box<NodeCond>),
    /// Composition `a / b`.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// Union `a | b`.
    Union(Box<PathExpr>, Box<PathExpr>),
    /// Transitive closure `(p)+` — one or more iterations. This is the
    /// conditional-axis construct: `(step[φ])+` when `p` is an atom.
    Plus(Box<PathExpr>),
    /// Reflexive-transitive closure `(p)*`.
    Star(Box<PathExpr>),
}

impl PathExpr {
    /// A bare step with no test or condition.
    pub fn step(step: Step) -> Self {
        PathExpr::Atom {
            step,
            test: Test::Any,
            cond: Box::new(NodeCond::True),
        }
    }

    /// A step whose target satisfies `cond`.
    pub fn step_if(step: Step, cond: NodeCond) -> Self {
        PathExpr::Atom {
            step,
            test: Test::Any,
            cond: Box::new(cond),
        }
    }

    /// A step whose target carries `tag`.
    pub fn step_to(step: Step, tag: Sym) -> Self {
        PathExpr::Atom {
            step,
            test: Test::Tag(tag),
            cond: Box::new(NodeCond::True),
        }
    }

    /// Marx's `?φ` — keep nodes satisfying `cond`, go nowhere.
    pub fn filter(cond: NodeCond) -> Self {
        PathExpr::Filter(Box::new(cond))
    }

    /// Composition `a / b`.
    pub fn seq(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::Seq(Box::new(a), Box::new(b))
    }

    /// Compose many expressions left to right.
    pub fn chain(parts: impl IntoIterator<Item = PathExpr>) -> Self {
        let mut it = parts.into_iter();
        let first = it.next().expect("chain of at least one expression");
        it.fold(first, PathExpr::seq)
    }

    /// Union `a | b`.
    pub fn union(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::Union(Box::new(a), Box::new(b))
    }

    /// Transitive closure `(p)+`.
    pub fn plus(p: PathExpr) -> Self {
        PathExpr::Plus(Box::new(p))
    }

    /// Reflexive-transitive closure `(p)*`.
    pub fn star(p: PathExpr) -> Self {
        PathExpr::Star(Box::new(p))
    }

    /// All nodes reachable from `from` through this expression, in
    /// document order, deduplicated.
    pub fn eval(&self, tree: &Tree, from: NodeId) -> Vec<NodeId> {
        let mut out = self.eval_set(tree, &[from]);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Set-at-a-time evaluation (worklist for the closures).
    fn eval_set(&self, tree: &Tree, from: &[NodeId]) -> Vec<NodeId> {
        match self {
            PathExpr::Atom { step, test, cond } => {
                let mut out = Vec::new();
                for &n in from {
                    for t in step.apply(tree, n) {
                        if test.holds(tree, t) && cond.holds(tree, t) {
                            out.push(t);
                        }
                    }
                }
                dedup(out)
            }
            PathExpr::Filter(cond) => from
                .iter()
                .copied()
                .filter(|&n| cond.holds(tree, n))
                .collect(),
            PathExpr::Seq(a, b) => {
                let mid = a.eval_set(tree, from);
                b.eval_set(tree, &mid)
            }
            PathExpr::Union(a, b) => {
                let mut out = a.eval_set(tree, from);
                out.extend(b.eval_set(tree, from));
                dedup(out)
            }
            PathExpr::Plus(p) => {
                // Fixpoint: first iteration seeds the worklist.
                let mut reached: Vec<bool> = vec![false; tree.len()];
                let mut work = p.eval_set(tree, from);
                for &n in &work {
                    reached[n.index()] = true;
                }
                while let Some(n) = work.pop() {
                    for t in p.eval_set(tree, &[n]) {
                        if !reached[t.index()] {
                            reached[t.index()] = true;
                            work.push(t);
                        }
                    }
                }
                reached
                    .iter()
                    .enumerate()
                    .filter(|&(_, &r)| r)
                    .map(|(i, _)| NodeId(i as u32))
                    .collect()
            }
            PathExpr::Star(p) => {
                let mut out: Vec<NodeId> = from.to_vec();
                out.extend(PathExpr::Plus(p.clone()).eval_set(tree, from));
                dedup(out)
            }
        }
    }
}

fn dedup(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v.dedup();
    v
}

// ---------------------------------------------------------------
// The headline constructions
// ---------------------------------------------------------------

/// `immediate-following` (LPath `->`) in Conditional XPath:
///
/// ```text
/// (up[last-child])* / right / (down[first-child])*
/// ```
///
/// Walk up while the current node is its parent's last child (so its
/// rightmost leaf is still the context's rightmost leaf), step to the
/// next sibling — the first node after the context in document order
/// whose subtree is disjoint — then optionally descend through first
/// children (every such descendant starts at the same leaf).
///
/// Every closure here is a *conditional* axis: `(up[¬∃right])*` is not
/// expressible in Core XPath, which has closures only of the
/// unconditional `up`/`down` (ancestor/descendant). This is exactly
/// where Lemma 3.1 bites.
pub fn immediate_following() -> PathExpr {
    PathExpr::chain([
        // (up from a last child)*: source-side condition, encoded by
        // filtering before each Up step.
        PathExpr::star(PathExpr::seq(
            PathExpr::filter(NodeCond::is_last_child()),
            PathExpr::step(Step::Up),
        )),
        PathExpr::step(Step::Right),
        PathExpr::star(PathExpr::step_if(Step::Down, NodeCond::is_first_child())),
    ])
}

/// `immediate-preceding` (LPath `<-`): the mirror image.
pub fn immediate_preceding() -> PathExpr {
    PathExpr::chain([
        PathExpr::star(PathExpr::seq(
            PathExpr::filter(NodeCond::is_first_child()),
            PathExpr::step(Step::Up),
        )),
        PathExpr::step(Step::Left),
        PathExpr::star(PathExpr::step_if(Step::Down, NodeCond::is_last_child())),
    ])
}

/// `immediate-following-sibling` (LPath `=>`) is simply the `right`
/// primitive — one of Marx's signature relations. XPath 1.0 needs the
/// position() circumlocution for it; Core XPath (which lacks
/// position()) cannot express it at all.
pub fn immediate_following_sibling() -> PathExpr {
    PathExpr::step(Step::Right)
}

/// `immediate-preceding-sibling` (LPath `<=`).
pub fn immediate_preceding_sibling() -> PathExpr {
    PathExpr::step(Step::Left)
}

/// `following` (LPath `-->`) as the transitive closure of
/// [`immediate_following`] — Table 1's claim that `-->` is the closure
/// of `->`.
pub fn following_via_closure() -> PathExpr {
    PathExpr::plus(immediate_following())
}

/// `following-sibling` (LPath `==>`) as `(right)+`.
pub fn following_sibling_via_closure() -> PathExpr {
    PathExpr::plus(PathExpr::step(Step::Right))
}

// ---------------------------------------------------------------
// Core XPath enumeration (for the finite Lemma 3.1 refutation)
// ---------------------------------------------------------------

/// A purely structural Core XPath query: a chain of (axis, tag) steps
/// starting with `descendant` from the root, no predicates. Predicates
/// only intersect downstream sets and cannot manufacture the adjacency
/// relation; the chain form suffices for the finite refutation and
/// keeps the enumeration tractable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreChain {
    /// `(axis, tag)` pairs; `None` is the wildcard.
    pub steps: Vec<(lpath_syntax::Axis, Option<String>)>,
}

/// Enumerate every [`CoreChain`] of exactly `len` steps over the given
/// tag alphabet (plus the wildcard), using only Core XPath axes.
pub fn core_xpath_queries_up_to(len: usize, tags: &[&str]) -> Vec<CoreChain> {
    use lpath_syntax::Axis;
    let axes: Vec<Axis> = Axis::ALL
        .iter()
        .copied()
        .filter(|a| a.in_core_xpath() && *a != Axis::Attribute)
        .collect();
    let mut tests: Vec<Option<String>> = vec![None];
    tests.extend(tags.iter().map(|t| Some(t.to_string())));
    let mut out: Vec<CoreChain> = vec![CoreChain { steps: Vec::new() }];
    for _ in 0..len {
        let mut next = Vec::with_capacity(out.len() * axes.len() * tests.len());
        for chain in &out {
            for &axis in &axes {
                for test in &tests {
                    let mut steps = chain.steps.clone();
                    steps.push((axis, test.clone()));
                    next.push(CoreChain { steps });
                }
            }
        }
        out = next;
    }
    out
}

impl CoreChain {
    /// Render as an LPath/XPath query string (`//` descendant entry
    /// point, then named axes).
    pub fn to_query(&self) -> String {
        use lpath_syntax::Axis;
        let mut s = String::new();
        for (i, (axis, tag)) in self.steps.iter().enumerate() {
            let test = tag.as_deref().unwrap_or("_");
            if i == 0 {
                // Entry: absolute descendant.
                s.push_str("//");
                s.push_str(test);
                continue;
            }
            match axis {
                Axis::Child => {
                    s.push('/');
                    s.push_str(test);
                }
                Axis::Descendant => {
                    s.push_str("//");
                    s.push_str(test);
                }
                a => {
                    s.push('/');
                    s.push_str(a.name());
                    s.push_str("::");
                    s.push_str(test);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;
    use lpath_model::Corpus;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn fig1() -> Corpus {
        parse_str(FIG1).unwrap()
    }

    #[test]
    fn primitive_steps() {
        let c = fig1();
        let t = &c.trees()[0];
        let root = t.root();
        assert_eq!(PathExpr::step(Step::Down).eval(t, root).len(), 3);
        assert_eq!(PathExpr::step(Step::Up).eval(t, root).len(), 0);
        // NP(1) → VP(2) → N(today).
        let np1 = NodeId(1);
        assert_eq!(PathExpr::step(Step::Right).eval(t, np1), [NodeId(2)]);
        assert_eq!(PathExpr::step(Step::Left).eval(t, NodeId(2)), [np1]);
    }

    #[test]
    fn closures_are_ancestor_descendant() {
        let c = fig1();
        let t = &c.trees()[0];
        // (down)+ from the root reaches every non-root node.
        let all_below = PathExpr::plus(PathExpr::step(Step::Down)).eval(t, t.root());
        assert_eq!(all_below.len(), t.len() - 1);
        // (up)+ from a leaf reaches exactly its ancestors.
        let dog_n = NodeId(13);
        let ups = PathExpr::plus(PathExpr::step(Step::Up)).eval(t, dog_n);
        assert_eq!(ups.len(), t.ancestors(dog_n).count());
    }

    #[test]
    fn immediate_following_matches_figure1() {
        let c = fig1();
        let t = &c.trees()[0];
        let name = |n: NodeId| c.resolve(t.node(n).name);
        // From V: NP(6), NP(7), Det(8) — the paper's §2.2.1 example.
        let v = t.preorder().find(|&n| name(n) == "V").unwrap();
        let got: Vec<&str> = immediate_following()
            .eval(t, v)
            .into_iter()
            .map(name)
            .collect();
        assert_eq!(got, ["NP", "NP", "Det"]);
    }

    #[test]
    fn equivalence_with_lpath_axes_on_figure1() {
        use lpath_model::{label_tree, AxisRel};
        let c = fig1();
        let t = &c.trees()[0];
        let labels = label_tree(t);
        let cases: [(PathExpr, AxisRel); 6] = [
            (immediate_following(), AxisRel::ImmediateFollowing),
            (immediate_preceding(), AxisRel::ImmediatePreceding),
            (
                immediate_following_sibling(),
                AxisRel::ImmediateFollowingSibling,
            ),
            (
                immediate_preceding_sibling(),
                AxisRel::ImmediatePrecedingSibling,
            ),
            (following_via_closure(), AxisRel::Following),
            (following_sibling_via_closure(), AxisRel::FollowingSibling),
        ];
        for (expr, rel) in cases {
            for c_node in t.preorder() {
                let got = expr.eval(t, c_node);
                let want: Vec<NodeId> = t
                    .preorder()
                    .filter(|&x| rel.holds(&labels[x.index()], &labels[c_node.index()]))
                    .collect();
                assert_eq!(got, want, "{rel:?} from {c_node:?}");
            }
        }
    }

    #[test]
    fn filter_and_union() {
        let c = fig1();
        let t = &c.trees()[0];
        let np = c.interner().get("NP").unwrap();
        // Children that are NPs, via filter.
        let kids_np = PathExpr::seq(
            PathExpr::step(Step::Down),
            PathExpr::filter(NodeCond::Is(Test::Tag(np))),
        );
        let direct = PathExpr::step_to(Step::Down, np);
        for n in t.preorder() {
            assert_eq!(kids_np.eval(t, n), direct.eval(t, n));
        }
        // left | right = all adjacent siblings.
        let adj = PathExpr::union(PathExpr::step(Step::Left), PathExpr::step(Step::Right));
        let vp = NodeId(2);
        assert_eq!(adj.eval(t, vp).len(), 2);
    }

    #[test]
    fn conditional_closure_differs_from_unconditional() {
        // (up[last-child])* stops at the first non-last ancestor —
        // strictly smaller than ancestor-or-self. On Figure 1, from N
        // (dog), up-while-last reaches NP(a dog), PP, NP(6) — and stops
        // below VP because NP(6) is VP's last child… VP is *its* parent:
        // check the actual chain instead of guessing: the relation must
        // be a prefix chain of ancestors.
        let c = fig1();
        let t = &c.trees()[0];
        let dog_n = NodeId(13);
        let cond = PathExpr::star(PathExpr::seq(
            PathExpr::filter(NodeCond::is_last_child()),
            PathExpr::step(Step::Up),
        ));
        let got = cond.eval(t, dog_n);
        let unconditional = PathExpr::star(PathExpr::step(Step::Up)).eval(t, dog_n);
        assert!(got.len() < unconditional.len());
        // Every conditional result is an ancestor-or-self.
        for n in &got {
            assert!(unconditional.contains(n));
        }
    }

    #[test]
    fn core_chain_enumeration_counts() {
        // 11 non-attribute Core XPath axes × (1 wildcard + 2 tags) = 33
        // single steps.
        let chains = core_xpath_queries_up_to(1, &["V", "NP"]);
        assert_eq!(chains.len(), 33);
        let chains = core_xpath_queries_up_to(2, &["V"]);
        assert_eq!(chains.len(), 22 * 22);
    }

    #[test]
    fn core_chain_renders_parseable_queries() {
        for chain in core_xpath_queries_up_to(2, &["V", "NP"]).iter().take(200) {
            let q = chain.to_query();
            lpath_syntax::parse(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
