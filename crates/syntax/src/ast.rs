//! Abstract syntax of LPath (paper §3, Figure 4).
//!
//! An LPath query is a [`Path`]: a sequence of [`Step`]s optionally
//! followed by a *scoped* continuation in braces. Each step names an
//! [`Axis`], a [`NodeTest`], optional edge-alignment markers (`^`, `$`)
//! and a list of [`Pred`]icates.

use std::fmt;

/// Every LPath navigation axis (paper Table 1).
///
/// The inventory contains each primitive horizontal navigation, its
/// transitive closure and its reflexive-transitive (`-or-self`) closure,
/// alongside the familiar XPath vertical axes — the "filled gap" the
/// paper emphasises.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // names are the documentation (Table 1 rows)
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    SelfAxis,
    ImmediateFollowing,
    Following,
    FollowingOrSelf,
    ImmediatePreceding,
    Preceding,
    PrecedingOrSelf,
    ImmediateFollowingSibling,
    FollowingSibling,
    FollowingSiblingOrSelf,
    ImmediatePrecedingSibling,
    PrecedingSibling,
    PrecedingSiblingOrSelf,
    /// `@name` — attribute access.
    Attribute,
}

impl Axis {
    /// The canonical LPath abbreviation (paper Table 1), or the spelled
    /// out `/name::` form when no abbreviation exists.
    pub fn abbreviation(self) -> &'static str {
        use Axis::*;
        match self {
            Child => "/",
            Descendant => "//",
            DescendantOrSelf => "/descendant-or-self::",
            Parent => "\\",
            Ancestor => "\\ancestor::",
            AncestorOrSelf => "\\ancestor-or-self::",
            SelfAxis => ".",
            ImmediateFollowing => "->",
            Following => "-->",
            FollowingOrSelf => "->*",
            ImmediatePreceding => "<-",
            Preceding => "<--",
            PrecedingOrSelf => "<-*",
            ImmediateFollowingSibling => "=>",
            FollowingSibling => "==>",
            FollowingSiblingOrSelf => "=>*",
            ImmediatePrecedingSibling => "<=",
            PrecedingSibling => "<==",
            PrecedingSiblingOrSelf => "<=*",
            Attribute => "@",
        }
    }

    /// The XPath-style axis name (`following-sibling`, …).
    pub fn name(self) -> &'static str {
        use Axis::*;
        match self {
            Child => "child",
            Descendant => "descendant",
            DescendantOrSelf => "descendant-or-self",
            Parent => "parent",
            Ancestor => "ancestor",
            AncestorOrSelf => "ancestor-or-self",
            SelfAxis => "self",
            ImmediateFollowing => "immediate-following",
            Following => "following",
            FollowingOrSelf => "following-or-self",
            ImmediatePreceding => "immediate-preceding",
            Preceding => "preceding",
            PrecedingOrSelf => "preceding-or-self",
            ImmediateFollowingSibling => "immediate-following-sibling",
            FollowingSibling => "following-sibling",
            FollowingSiblingOrSelf => "following-sibling-or-self",
            ImmediatePrecedingSibling => "immediate-preceding-sibling",
            PrecedingSibling => "preceding-sibling",
            PrecedingSiblingOrSelf => "preceding-sibling-or-self",
            Attribute => "attribute",
        }
    }

    /// Parse an XPath-style axis name.
    pub fn from_name(name: &str) -> Option<Axis> {
        use Axis::*;
        Some(match name {
            "child" => Child,
            "descendant" => Descendant,
            "descendant-or-self" => DescendantOrSelf,
            "parent" => Parent,
            "ancestor" => Ancestor,
            "ancestor-or-self" => AncestorOrSelf,
            "self" => SelfAxis,
            "immediate-following" => ImmediateFollowing,
            "following" => Following,
            "following-or-self" => FollowingOrSelf,
            "immediate-preceding" => ImmediatePreceding,
            "preceding" => Preceding,
            "preceding-or-self" => PrecedingOrSelf,
            "immediate-following-sibling" => ImmediateFollowingSibling,
            "following-sibling" => FollowingSibling,
            "following-sibling-or-self" => FollowingSiblingOrSelf,
            "immediate-preceding-sibling" => ImmediatePrecedingSibling,
            "preceding-sibling" => PrecedingSibling,
            "preceding-sibling-or-self" => PrecedingSiblingOrSelf,
            "attribute" => Attribute,
            _ => return None,
        })
    }

    /// Is this one of the eight horizontal axes LPath adds to XPath, or
    /// their closures?
    pub fn is_horizontal(self) -> bool {
        use Axis::*;
        matches!(
            self,
            ImmediateFollowing
                | Following
                | FollowingOrSelf
                | ImmediatePreceding
                | Preceding
                | PrecedingOrSelf
                | ImmediateFollowingSibling
                | FollowingSibling
                | FollowingSiblingOrSelf
                | ImmediatePrecedingSibling
                | PrecedingSibling
                | PrecedingSiblingOrSelf
        )
    }

    /// Is this axis expressible in Core XPath (paper Table 1, last
    /// column)? The immediate horizontal axes and the `-or-self`
    /// horizontal closures are not.
    pub fn in_core_xpath(self) -> bool {
        use Axis::*;
        matches!(
            self,
            Child
                | Descendant
                | DescendantOrSelf
                | Parent
                | Ancestor
                | AncestorOrSelf
                | SelfAxis
                | Following
                | Preceding
                | FollowingSibling
                | PrecedingSibling
                | Attribute
        )
    }

    /// All twenty axes, for exhaustive tests.
    pub const ALL: [Axis; 20] = {
        use Axis::*;
        [
            Child,
            Descendant,
            DescendantOrSelf,
            Parent,
            Ancestor,
            AncestorOrSelf,
            SelfAxis,
            ImmediateFollowing,
            Following,
            FollowingOrSelf,
            ImmediatePreceding,
            Preceding,
            PrecedingOrSelf,
            ImmediateFollowingSibling,
            FollowingSibling,
            FollowingSiblingOrSelf,
            ImmediatePrecedingSibling,
            PrecedingSibling,
            PrecedingSiblingOrSelf,
            Attribute,
        ]
    };
}

/// What a step matches at the node it navigates to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeTest {
    /// `_` — any element.
    Any,
    /// A tag name (`NP`, `-NONE-`, `NP-SBJ-2`, …).
    Tag(String),
}

impl NodeTest {
    /// A tag test.
    pub fn tag(s: impl Into<String>) -> Self {
        NodeTest::Tag(s.into())
    }
}

/// Comparison operators in predicates.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // names are the documentation
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Gt,
}

impl CmpOp {
    /// The operator as written in queries.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        }
    }
}

/// Right-hand side of a `position()` comparison.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PosRhs {
    /// A literal position.
    Const(u32),
    /// `last()`.
    Last,
}

/// String functions of the core function library (the paper's footnote 1
/// reserves a function library for LPath "as with XPath"; `contains` and
/// `starts-with` are XPath 1.0 §4.2, `ends-with` rounds out the set).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // names are the documentation
pub enum StrFunc {
    Contains,
    StartsWith,
    EndsWith,
}

impl StrFunc {
    /// The function name as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            StrFunc::Contains => "contains",
            StrFunc::StartsWith => "starts-with",
            StrFunc::EndsWith => "ends-with",
        }
    }

    /// Parse a function name.
    pub fn from_name(name: &str) -> Option<StrFunc> {
        Some(match name {
            "contains" => StrFunc::Contains,
            "starts-with" => StrFunc::StartsWith,
            "ends-with" => StrFunc::EndsWith,
            _ => return None,
        })
    }

    /// Apply the function to a candidate string value.
    pub fn apply(self, haystack: &str, needle: &str) -> bool {
        match self {
            StrFunc::Contains => haystack.contains(needle),
            StrFunc::StartsWith => haystack.starts_with(needle),
            StrFunc::EndsWith => haystack.ends_with(needle),
        }
    }

    /// All three functions, for exhaustive tests.
    pub const ALL: [StrFunc; 3] = [StrFunc::Contains, StrFunc::StartsWith, StrFunc::EndsWith];
}

/// A predicate expression inside `[ … ]`.
#[derive(Clone, PartialEq, Debug)]
pub enum Pred {
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Negation (`not(…)`).
    Not(Box<Pred>),
    /// A relative path that must have at least one match.
    Exists(Path),
    /// `path op literal` — the string value of the path's target
    /// (typically an attribute) compared against a literal.
    Cmp {
        /// The compared path (attribute-final).
        path: Path,
        /// Comparison operator.
        op: CmpOp,
        /// The literal to compare against.
        value: String,
    },
    /// `position() op rhs`; the bare `[last()]` is
    /// `Position(Eq, PosRhs::Last)`.
    Position(CmpOp, PosRhs),
    /// `count(path) op n` — cardinality of the path's match set.
    Count {
        /// The counted path.
        path: Path,
        /// Comparison operator.
        op: CmpOp,
        /// The threshold.
        value: u32,
    },
    /// `contains(path, 'str')` and friends — true when some string value
    /// selected by the path (typically an attribute) satisfies the
    /// function.
    StrCmp {
        /// Which string function.
        func: StrFunc,
        /// The inspected path (attribute-final).
        path: Path,
        /// The function's string argument.
        arg: String,
    },
    /// `string-length(path) op n` — character count of a selected string
    /// value.
    StrLen {
        /// The inspected path (attribute-final).
        path: Path,
        /// Comparison operator.
        op: CmpOp,
        /// The length threshold.
        value: u32,
    },
}

impl Pred {
    /// A path-existence predicate.
    pub fn exists(path: Path) -> Self {
        Pred::Exists(path)
    }

    /// `a and b`.
    pub fn and(a: Pred, b: Pred) -> Self {
        Pred::And(Box::new(a), Box::new(b))
    }

    /// `a or b`.
    pub fn or(a: Pred, b: Pred) -> Self {
        Pred::Or(Box::new(a), Box::new(b))
    }

    /// `not(p)` (named after the query syntax, not `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Pred) -> Self {
        Pred::Not(Box::new(p))
    }
}

/// A half-open byte range `[start, end)` into the query source text.
///
/// Spans are carried by [`Step`]s for diagnostics (parser errors and
/// the `lpath-check` lints point back into the query). They are *not*
/// part of a step's structural identity: equality ignores them, and
/// programmatically built steps get the empty default span.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Does this span carry no source attribution (the default on
    /// programmatically built ASTs)?
    pub fn is_unknown(&self) -> bool {
        self.start == 0 && self.end == 0
    }
}

/// One location step: axis, optional left alignment, node test, optional
/// right alignment, predicates (Figure 4's `S ::= A '::' LA NodeTest RA
/// Predicates*`).
#[derive(Clone, Debug)]
pub struct Step {
    /// The navigation axis.
    pub axis: Axis,
    /// What the step matches at its target.
    pub test: NodeTest,
    /// `^` — the matched node's span starts at the innermost scope's
    /// left edge.
    pub left_align: bool,
    /// `$` — the span ends at the innermost scope's right edge.
    pub right_align: bool,
    /// Bracketed predicates, applied in order.
    pub predicates: Vec<Pred>,
    /// Source range of the step's concrete syntax (including its
    /// predicates); the empty span when built programmatically.
    pub span: Span,
}

impl PartialEq for Step {
    /// Structural equality. `span` is deliberately excluded so that
    /// `parse ∘ display` round-trips compare equal even though the
    /// printed text lays tokens out at different offsets.
    fn eq(&self, other: &Self) -> bool {
        self.axis == other.axis
            && self.test == other.test
            && self.left_align == other.left_align
            && self.right_align == other.right_align
            && self.predicates == other.predicates
    }
}

impl Step {
    /// A bare step with no alignment or predicates.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            left_align: false,
            right_align: false,
            predicates: Vec::new(),
            span: Span::default(),
        }
    }

    /// Append a predicate (builder style).
    pub fn with_pred(mut self, p: Pred) -> Self {
        self.predicates.push(p);
        self
    }

    /// Set the alignment flags (builder style).
    pub fn aligned(mut self, left: bool, right: bool) -> Self {
        self.left_align = left;
        self.right_align = right;
        self
    }
}

/// A (possibly scoped) path: `RLP ::= HP | HP '{' RLP '}'` (Figure 4).
///
/// `steps` is the head path; `scope` is the optional braced
/// continuation, evaluated with every head-result node as both context
/// *and* subtree scope. The query result is the result of the innermost
/// continuation (or of the head when there is none).
#[derive(Clone, PartialEq, Debug)]
pub struct Path {
    /// Absolute paths start at the (implicit) document node.
    pub absolute: bool,
    /// The head path's steps.
    pub steps: Vec<Step>,
    /// The optional braced continuation (subtree scoping).
    pub scope: Option<Box<Path>>,
}

impl Path {
    /// A relative path (evaluated from a context node).
    pub fn relative(steps: Vec<Step>) -> Self {
        Path {
            absolute: false,
            steps,
            scope: None,
        }
    }

    /// An absolute path (evaluated from the document node).
    pub fn absolute(steps: Vec<Step>) -> Self {
        Path {
            absolute: true,
            steps,
            scope: None,
        }
    }

    /// Attach a scoped continuation (builder style).
    pub fn scoped(mut self, inner: Path) -> Self {
        self.scope = Some(Box::new(inner));
        self
    }

    /// Total number of steps including scoped continuations and
    /// predicate sub-paths (a rough complexity measure used by tests and
    /// the planner's sanity assertions).
    pub fn total_steps(&self) -> usize {
        fn pred_steps(p: &Pred) -> usize {
            match p {
                Pred::Or(a, b) | Pred::And(a, b) => pred_steps(a) + pred_steps(b),
                Pred::Not(a) => pred_steps(a),
                Pred::Exists(p) => p.total_steps(),
                Pred::Cmp { path, .. }
                | Pred::Count { path, .. }
                | Pred::StrCmp { path, .. }
                | Pred::StrLen { path, .. } => path.total_steps(),
                Pred::Position(..) => 0,
            }
        }
        let own: usize = self
            .steps
            .iter()
            .map(|s| 1 + s.predicates.iter().map(pred_steps).sum::<usize>())
            .sum();
        own + self.scope.as_ref().map_or(0, |s| s.total_steps())
    }

    /// Does the query use any feature beyond XPath 1.0 (horizontal
    /// immediate axes, scoping, alignment)? Mirrors the paper's
    /// Lemma 3.1 features.
    pub fn uses_lpath_extensions(&self) -> bool {
        fn step_ext(s: &Step) -> bool {
            use Axis::*;
            s.left_align
                || s.right_align
                || matches!(
                    s.axis,
                    ImmediateFollowing
                        | FollowingOrSelf
                        | ImmediatePreceding
                        | PrecedingOrSelf
                        | ImmediateFollowingSibling
                        | FollowingSiblingOrSelf
                        | ImmediatePrecedingSibling
                        | PrecedingSiblingOrSelf
                )
                || s.predicates.iter().any(pred_ext)
        }
        fn pred_ext(p: &Pred) -> bool {
            match p {
                Pred::Or(a, b) | Pred::And(a, b) => pred_ext(a) || pred_ext(b),
                Pred::Not(a) => pred_ext(a),
                Pred::Exists(p) => p.uses_lpath_extensions(),
                // count/contains/starts-with/string-length are XPath 1.0
                // core functions: only their inner path can make the
                // query an extension.
                Pred::Cmp { path, .. }
                | Pred::Count { path, .. }
                | Pred::StrCmp { path, .. }
                | Pred::StrLen { path, .. } => path.uses_lpath_extensions(),
                Pred::Position(..) => false,
            }
        }
        self.scope.is_some() || self.steps.iter().any(step_ext)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_name_round_trips() {
        for axis in Axis::ALL {
            assert_eq!(Axis::from_name(axis.name()), Some(axis), "{axis:?}");
        }
        assert_eq!(Axis::from_name("bogus"), None);
    }

    #[test]
    fn horizontal_classification() {
        assert!(Axis::ImmediateFollowing.is_horizontal());
        assert!(Axis::FollowingSibling.is_horizontal());
        assert!(!Axis::Child.is_horizontal());
        assert!(!Axis::Attribute.is_horizontal());
        // Exactly twelve horizontal axes (4 primitives × 3 closures).
        assert_eq!(Axis::ALL.iter().filter(|a| a.is_horizontal()).count(), 12);
    }

    #[test]
    fn core_xpath_membership_matches_table_1() {
        use Axis::*;
        // Lemma 3.1: immediate horizontal axes are beyond Core XPath.
        for a in [
            ImmediateFollowing,
            ImmediatePreceding,
            ImmediateFollowingSibling,
            ImmediatePrecedingSibling,
        ] {
            assert!(!a.in_core_xpath(), "{a:?}");
        }
        for a in [Child, Descendant, Following, PrecedingSibling] {
            assert!(a.in_core_xpath(), "{a:?}");
        }
    }

    #[test]
    fn total_steps_counts_scope_and_predicates() {
        let inner = Path::relative(vec![Step::new(Axis::Child, NodeTest::tag("V"))]);
        let mut head = Path::absolute(vec![Step::new(Axis::Descendant, NodeTest::tag("VP"))]);
        head.steps[0]
            .predicates
            .push(Pred::exists(Path::relative(vec![Step::new(
                Axis::Descendant,
                NodeTest::Any,
            )])));
        let q = head.scoped(inner);
        assert_eq!(q.total_steps(), 3);
    }

    #[test]
    fn extension_detection() {
        let plain = Path::absolute(vec![Step::new(Axis::Descendant, NodeTest::tag("S"))]);
        assert!(!plain.uses_lpath_extensions());
        let imm = Path::absolute(vec![Step::new(
            Axis::ImmediateFollowing,
            NodeTest::tag("NP"),
        )]);
        assert!(imm.uses_lpath_extensions());
        let scoped = Path::absolute(vec![Step::new(Axis::Descendant, NodeTest::tag("VP"))]).scoped(
            Path::relative(vec![Step::new(Axis::Child, NodeTest::tag("V"))]),
        );
        assert!(scoped.uses_lpath_extensions());
        let aligned = Path::absolute(vec![
            Step::new(Axis::Descendant, NodeTest::tag("NP")).aligned(false, true)
        ]);
        assert!(aligned.uses_lpath_extensions());
    }
}
