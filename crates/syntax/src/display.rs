//! Rendering ASTs back to LPath concrete syntax.
//!
//! The printer emits the canonical abbreviations of Table 1, quoting tag
//! names that contain metacharacters. `parse ∘ display` is the identity
//! on ASTs (verified by the round-trip tests below and by property tests
//! at the workspace root).

use std::fmt;

use crate::ast::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Step};

impl Path {
    /// Render, optionally suppressing a leading child-axis `/` (used for
    /// top-level relative paths so `VP/V` does not print as the absolute
    /// `/VP/V`). Scoped continuations always keep the slash, matching
    /// the paper's `//VP{/NP$}` notation.
    fn fmt_with(&self, f: &mut fmt::Formatter<'_>, omit_leading_child: bool) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            write_step(f, step, i == 0 && omit_leading_child)?;
        }
        if let Some(scope) = &self.scope {
            f.write_str("{")?;
            scope.fmt_with(f, false)?;
            f.write_str("}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f, !self.absolute)
    }
}

/// Does this tag need quoting to survive the lexer?
fn needs_quoting(tag: &str) -> bool {
    tag.is_empty()
        || tag == "_"
        || !tag
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        || tag.contains("->")
        || tag.contains("-->")
}

/// Write a single-quoted literal, escaping embedded quote characters
/// by doubling them (`it's` → `'it''s'`), so `parse ∘ display` stays
/// the identity on arbitrary strings.
fn write_quoted(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("'")?;
    for (i, part) in s.split('\'').enumerate() {
        if i > 0 {
            f.write_str("''")?;
        }
        f.write_str(part)?;
    }
    f.write_str("'")
}

/// Write a literal value, quoting when the lexer would otherwise
/// misread it (metacharacters, keywords, wildcards).
fn write_value(f: &mut fmt::Formatter<'_>, value: &str) -> fmt::Result {
    let quoted = value.is_empty()
        || !value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        || value == "_"
        || value.contains("->");
    if quoted {
        write_quoted(f, value)
    } else {
        f.write_str(value)
    }
}

fn write_test(f: &mut fmt::Formatter<'_>, test: &NodeTest) -> fmt::Result {
    match test {
        NodeTest::Any => f.write_str("_"),
        NodeTest::Tag(t) if needs_quoting(t) => write_quoted(f, t),
        NodeTest::Tag(t) => f.write_str(t),
    }
}

fn write_step(f: &mut fmt::Formatter<'_>, step: &Step, first_relative: bool) -> fmt::Result {
    use Axis::*;
    match step.axis {
        Child if first_relative => {}
        Child => f.write_str("/")?,
        Descendant => f.write_str("//")?,
        Parent => f.write_str("\\")?,
        Ancestor => f.write_str("\\\\")?,
        SelfAxis => f.write_str(".")?,
        Attribute => f.write_str("@")?,
        ImmediateFollowing => f.write_str("->")?,
        Following => f.write_str("-->")?,
        FollowingOrSelf => f.write_str("->*")?,
        ImmediatePreceding => f.write_str("<-")?,
        Preceding => f.write_str("<--")?,
        PrecedingOrSelf => f.write_str("<-*")?,
        ImmediateFollowingSibling => f.write_str("=>")?,
        FollowingSibling => f.write_str("==>")?,
        FollowingSiblingOrSelf => f.write_str("=>*")?,
        ImmediatePrecedingSibling => f.write_str("<=")?,
        PrecedingSibling => f.write_str("<==")?,
        PrecedingSiblingOrSelf => f.write_str("<=*")?,
        DescendantOrSelf => write!(f, "/descendant-or-self::")?,
        AncestorOrSelf => write!(f, "\\ancestor-or-self::")?,
    }
    if step.left_align {
        f.write_str("^")?;
    }
    if step.axis == Axis::Attribute {
        // Attribute tests print bare: `@lex`.
        match &step.test {
            NodeTest::Any => f.write_str("_")?,
            NodeTest::Tag(t) => f.write_str(t)?,
        }
    } else if !(step.axis == Axis::SelfAxis && step.test == NodeTest::Any) {
        write_test(f, &step.test)?;
    }
    if step.right_align {
        f.write_str("$")?;
    }
    for p in &step.predicates {
        write!(f, "[{p}]")?;
    }
    Ok(())
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Or(a, b) => write!(f, "{a} or {b}"),
            Pred::And(a, b) => {
                // Parenthesize an `or` under `and` to preserve precedence.
                match (a.as_ref(), b.as_ref()) {
                    (Pred::Or(..), Pred::Or(..)) => write!(f, "({a}) and ({b})"),
                    (Pred::Or(..), _) => write!(f, "({a}) and {b}"),
                    (_, Pred::Or(..)) => write!(f, "{a} and ({b})"),
                    _ => write!(f, "{a} and {b}"),
                }
            }
            Pred::Not(a) => write!(f, "not({a})"),
            Pred::Exists(p) => write!(f, "{p}"),
            Pred::Cmp { path, op, value } => {
                write!(f, "{path}{}", op.symbol())?;
                write_value(f, value)
            }
            Pred::Count { path, op, value } => {
                write!(f, "count({path}){}{value}", op.symbol())
            }
            Pred::StrCmp { func, path, arg } => {
                write!(f, "{}({path},", func.name())?;
                write_value(f, arg)?;
                f.write_str(")")
            }
            Pred::StrLen { path, op, value } => {
                write!(f, "string-length({path}){}{value}", op.symbol())
            }
            Pred::Position(op, rhs) => {
                write!(f, "position(){}", op.symbol())?;
                match rhs {
                    PosRhs::Const(n) => write!(f, "{n}"),
                    PosRhs::Last => write!(f, "last()"),
                }
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    /// parse → display → parse must be the identity on ASTs.
    fn round_trip(src: &str) {
        let ast = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("printed {printed}: {e}"));
        assert_eq!(ast, reparsed, "round trip failed: {src} → {printed}");
    }

    #[test]
    fn figure6c_round_trips() {
        for src in [
            "//S[//_[@lex=saw]]",
            "//VB->NP",
            "//VP/VB-->NN",
            "//VP{/VB-->NN}",
            "//VP{/NP$}",
            "//VP{//NP$}",
            "//VP[{//^VB->NP->PP$}]",
            "//S[//NP/ADJP]",
            "//NP[not(//JJ)]",
            "//NP[->PP[//IN[@lex=of]]=>VP]",
            "//S[{//_[@lex=what]->_[@lex=building]}]",
            "//_[@lex=rapprochement]",
            "//_[@lex=1929]",
            "//ADVP-LOC-CLR",
            "//WHPP",
            "//RRC/PP-TMP",
            "//UCP-PRD/ADJP-PRD",
            "//NP/NP/NP/NP/NP",
            "//VP/VP/VP",
            "//PP=>SBAR",
            "//ADVP=>ADJP",
            "//NP=>NP=>NP",
            "//VP=>VP",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn exotic_round_trips() {
        for src in [
            "//-NONE-",
            "//'PRP$'",
            "//'.'",
            "//X->*_",
            "//X<=*_[//Y or //Z and //W]",
            "//X[not(//Y[@a!=b])]",
            "//X\\\\S\\ancestor::_",
            "//V/following-sibling::_[position()=1][self::NP]",
            "//VP/_[last()]",
            "//S{//VP{/V->NP}}",
            "VP/V",
            "//X[{//^A->B$}]",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn function_library_round_trips() {
        for src in [
            "//NP[count(//JJ)>2]",
            "//NP[count(/_)=0]",
            "//_[contains(@lex,'og')]",
            "//_[starts-with(@lex,s)]",
            "//_[ends-with(@lex,'ing')]",
            "//_[string-length(@lex)=3]",
            "//X[not(contains(@lex,'a b'))]",
            "//X[count(//Y)>1 and contains(@lex,z) or string-length(@lex)<4]",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn quote_characters_round_trip() {
        use crate::ast::{Axis, CmpOp, NodeTest, Path, Pred, Step};
        // Through concrete syntax with doubled-quote escapes.
        for src in [
            "//'it''s'",
            "//_[@lex='it''s']",
            "//_[@lex='''']",
            "//_[contains(@lex,'a''b')]",
            "//_[@lex='a\"b']",
        ] {
            round_trip(src);
        }
        let ast = parse("//_[@lex='o''clock']").unwrap();
        assert_eq!(ast.to_string(), "//_[@lex='o''clock']");
        // Synthetic ASTs whose literals hold every nasty character mix:
        // display must produce re-parseable text that reproduces the AST.
        for value in ["'", "''", "it's", "a\"b'c", "'start", "end'", "\"", " "] {
            let mut step = Step::new(Axis::Descendant, NodeTest::tag(value));
            step.predicates.push(Pred::Cmp {
                path: Path::relative(vec![Step::new(Axis::Attribute, NodeTest::tag("lex"))]),
                op: CmpOp::Eq,
                value: value.to_string(),
            });
            let path = Path {
                absolute: true,
                steps: vec![step],
                scope: None,
            };
            let printed = path.to_string();
            let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{value:?} → {printed}: {e}"));
            assert_eq!(path, reparsed, "{value:?} → {printed}");
        }
    }

    #[test]
    fn canonical_forms() {
        assert_eq!(parse("//VP{/NP$}").unwrap().to_string(), "//VP{/NP$}");
        assert_eq!(parse("/descendant::NP").unwrap().to_string(), "//NP");
        assert_eq!(parse("//X->+Y").unwrap().to_string(), "//X-->Y");
    }
}
