//! LPath language front end: lexer, parser, AST and pretty printer.
//!
//! LPath (Bird et al., ICDE 2006) extends XPath 1.0 with
//!
//! * eight primitive/closure **horizontal axes** — `->` / `-->`
//!   (immediate-)following, `<-` / `<--` (immediate-)preceding, `=>` /
//!   `==>` (immediate-)following-sibling, `<=` / `<==`
//!   (immediate-)preceding-sibling — plus `*`/`+` closure markers for
//!   the `-or-self` variants;
//! * **subtree scoping** `{…}`, confining navigation to the scope
//!   node's subtree;
//! * **edge alignment** `^` (left) and `$` (right) against the
//!   innermost scope.
//!
//! ```
//! use lpath_syntax::{parse, Axis};
//!
//! let q = parse("//VP{/VB-->NN}").unwrap();
//! assert_eq!(q.steps[0].axis, Axis::Descendant);
//! let scoped = q.scope.as_ref().unwrap();
//! assert_eq!(scoped.steps[1].axis, Axis::Following);
//! assert_eq!(q.to_string(), "//VP{/VB-->NN}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Span, Step, StrFunc};
pub use error::{line_col, snippet, SyntaxError};
pub use lexer::tokenize;
pub use parser::parse;
pub use token::Token;
