//! Error type shared by the lexer and parser.

use std::fmt;

/// A lexing or parsing failure, with the byte offset of the offending
/// position in the query string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyntaxError {
    /// Byte offset in the query source.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl SyntaxError {
    /// An error at a byte offset.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        SyntaxError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SyntaxError {}
