//! Error type shared by the lexer and parser, plus the source-snippet
//! rendering shared with `lpath-check` diagnostics.

use std::fmt;

/// A lexing or parsing failure, with the byte offset of the offending
/// position in the query string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyntaxError {
    /// Byte offset in the query source.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl SyntaxError {
    /// An error at a byte offset.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        SyntaxError {
            offset,
            message: message.into(),
        }
    }

    /// The 1-based (line, column) of this error in `src` (the query
    /// text the failing parse was given).
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        line_col(src, self.offset)
    }

    /// A multi-line rendering with the offending source line and a
    /// caret pointing at the error position:
    ///
    /// ```text
    /// syntax error at line 1, column 6: expected '::'
    ///   | //NP/:x
    ///   |      ^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.line_col(src);
        format!(
            "syntax error at line {line}, column {col}: {}\n{}",
            self.message,
            snippet(src, self.offset, self.offset + 1),
        )
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SyntaxError {}

/// The 1-based (line, column) of byte `offset` in `src`. Columns count
/// characters, not bytes; an offset at or past the end of `src` maps
/// to one past the last character of the last line.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let col = before[line_start..].chars().count() + 1;
    (line, col)
}

/// Render the source line containing `[start, end)` with a caret line
/// underneath marking the range — the snippet shape shared by parser
/// errors and `lpath-check` diagnostics. The range is clamped to the
/// line; a degenerate range still gets one caret.
pub fn snippet(src: &str, start: usize, end: usize) -> String {
    let start = start.min(src.len());
    let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let line = &src[line_start..line_end];
    let lead = src[line_start..start].chars().count();
    let marked = src[start..end.clamp(start, line_end)].chars().count();
    format!(
        "  | {line}\n  | {}{}",
        " ".repeat(lead),
        "^".repeat(marked.max(1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_lines_and_chars() {
        assert_eq!(line_col("//NP", 0), (1, 1));
        assert_eq!(line_col("//NP", 2), (1, 3));
        // Past the end clamps to one past the last character.
        assert_eq!(line_col("//NP", 99), (1, 5));
        // Lines split on newlines; columns restart.
        assert_eq!(line_col("//NP\n//VP", 5), (2, 1));
        assert_eq!(line_col("//NP\n//VP", 7), (2, 3));
        // Columns count characters, not bytes.
        assert_eq!(line_col("//Bäume", 99), (1, 8));
    }

    #[test]
    fn snippet_marks_the_range() {
        assert_eq!(snippet("//NP/VP", 5, 7), "  | //NP/VP\n  |      ^^");
        // Degenerate ranges still get one caret.
        assert_eq!(snippet("//NP", 2, 2), "  | //NP\n  |   ^");
        // Only the offending line is shown.
        assert_eq!(snippet("//A\n//BB\n//C", 6, 8), "  | //BB\n  |   ^^");
    }

    #[test]
    fn render_is_human_readable() {
        let err = crate::parser::parse("//NP[@lex=]").unwrap_err();
        let r = err.render("//NP[@lex=]");
        assert!(r.contains("line 1, column"), "{r}");
        assert!(r.contains("  | //NP[@lex=]"), "{r}");
        let (line, col) = err.line_col("//NP[@lex=]");
        assert_eq!(line, 1);
        assert!(col >= 11, "caret at or after the ']': {col}");
    }
}
