//! Lexer for LPath queries.
//!
//! The trickiest part is Penn Treebank tag names: `-NONE-` and `-DFL-`
//! begin with `-`, which is also the first character of the `->` and
//! `-->` axes. The lexer resolves this by looking ahead: a `-` followed
//! by `>` (or by `->`) is an arrow, anything else starts a name.
//! Similarly `<` begins four different axes plus the numeric `<`
//! comparison, and `=` begins `=`, `=>` and `==>`.
//!
//! Tags that contain LPath metacharacters (`.`, `,`, `$`, `:`) must be
//! quoted: `//'.'` finds punctuation nodes, `//'PRP$'` possessive
//! pronouns.

use crate::error::SyntaxError;
use crate::token::Token;

/// A token plus its byte range in the source.
#[derive(Clone, PartialEq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

/// Tokenize a full query string.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, SyntaxError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let token = match b {
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    pos += 2;
                    Token::DoubleSlash
                } else {
                    pos += 1;
                    Token::Slash
                }
            }
            b'\\' => {
                if bytes.get(pos + 1) == Some(&b'\\') {
                    pos += 2;
                    Token::DoubleBackslash
                } else {
                    pos += 1;
                    Token::Backslash
                }
            }
            b'.' => {
                pos += 1;
                Token::Dot
            }
            b'@' => {
                pos += 1;
                Token::At
            }
            b':' => {
                if bytes.get(pos + 1) == Some(&b':') {
                    pos += 2;
                    Token::ColonColon
                } else {
                    return Err(SyntaxError::at(pos, "expected '::'"));
                }
            }
            b'-' => match (bytes.get(pos + 1), bytes.get(pos + 2)) {
                (Some(b'>'), _) => {
                    pos += 2;
                    Token::Arrow
                }
                (Some(b'-'), Some(b'>')) => {
                    pos += 3;
                    Token::LongArrow
                }
                _ => lex_name(bytes, &mut pos)?,
            },
            b'<' => match (bytes.get(pos + 1), bytes.get(pos + 2)) {
                (Some(b'-'), Some(b'-')) => {
                    pos += 3;
                    Token::LongBackArrow
                }
                (Some(b'-'), _) => {
                    pos += 2;
                    Token::BackArrow
                }
                (Some(b'='), Some(b'=')) => {
                    pos += 3;
                    Token::LongSibBackArrow
                }
                (Some(b'='), _) => {
                    pos += 2;
                    Token::SibBackArrow
                }
                _ => {
                    pos += 1;
                    Token::Lt
                }
            },
            b'=' => match (bytes.get(pos + 1), bytes.get(pos + 2)) {
                (Some(b'='), Some(b'>')) => {
                    pos += 3;
                    Token::LongSibArrow
                }
                (Some(b'>'), _) => {
                    pos += 2;
                    Token::SibArrow
                }
                _ => {
                    pos += 1;
                    Token::Eq
                }
            },
            b'>' => {
                pos += 1;
                Token::Gt
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    Token::Ne
                } else {
                    return Err(SyntaxError::at(pos, "expected '!='"));
                }
            }
            b'*' => {
                pos += 1;
                Token::Star
            }
            b'+' => {
                pos += 1;
                Token::Plus
            }
            b'^' => {
                pos += 1;
                Token::Caret
            }
            b'$' => {
                pos += 1;
                Token::Dollar
            }
            b'[' => {
                pos += 1;
                Token::LBracket
            }
            b']' => {
                pos += 1;
                Token::RBracket
            }
            b'{' => {
                pos += 1;
                Token::LBrace
            }
            b'}' => {
                pos += 1;
                Token::RBrace
            }
            b'(' => {
                pos += 1;
                Token::LParen
            }
            b')' => {
                pos += 1;
                Token::RParen
            }
            b',' => {
                pos += 1;
                Token::Comma
            }
            b'\'' | b'"' => {
                let quote = b;
                pos += 1;
                // A doubled quote inside the literal is an escaped
                // quote character (SQL style): 'it''s' reads as it's.
                let mut body = Vec::new();
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(SyntaxError::at(start, "unterminated string literal"));
                        }
                        Some(&c) if c == quote => {
                            if bytes.get(pos + 1) == Some(&quote) {
                                body.push(quote);
                                pos += 2;
                            } else {
                                pos += 1; // closing quote
                                break;
                            }
                        }
                        Some(&c) => {
                            body.push(c);
                            pos += 1;
                        }
                    }
                }
                let s = String::from_utf8(body)
                    .map_err(|_| SyntaxError::at(start, "invalid UTF-8 in literal"))?;
                Token::Literal(s)
            }
            c if is_name_char(c) => lex_name(bytes, &mut pos)?,
            c => {
                return Err(SyntaxError::at(
                    pos,
                    format!("unexpected character '{}'", c as char),
                ))
            }
        };
        out.push(Spanned {
            token,
            offset: start,
            end: pos,
        });
    }
    Ok(out)
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_'
}

/// Lex a name starting at `*pos`. Interior `-` is a name character
/// *unless* it begins an arrow (`->`/`-->`), so `NP-SBJ` is one name but
/// `V->NP` splits before the arrow.
fn lex_name(bytes: &[u8], pos: &mut usize) -> Result<Token, SyntaxError> {
    let start = *pos;
    while *pos < bytes.len() {
        let b = bytes[*pos];
        if !is_name_char(b) {
            break;
        }
        if b == b'-' {
            match (bytes.get(*pos + 1), bytes.get(*pos + 2)) {
                (Some(b'>'), _) => break,
                (Some(b'-'), Some(b'>')) => break,
                _ => {}
            }
        }
        *pos += 1;
    }
    if *pos == start {
        return Err(SyntaxError::at(start, "expected a name"));
    }
    let s = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| SyntaxError::at(start, "invalid UTF-8 in name"))?;
    if s == "_" {
        Ok(Token::Underscore)
    } else {
        Ok(Token::Name(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Token::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_query() {
        assert_eq!(
            toks("//VP/V-->N"),
            [
                DoubleSlash,
                Name("VP".into()),
                Slash,
                Name("V".into()),
                LongArrow,
                Name("N".into()),
            ]
        );
    }

    #[test]
    fn ptb_tags_with_dashes() {
        assert_eq!(toks("-NONE-"), [Name("-NONE-".into())]);
        assert_eq!(toks("//-DFL-"), [DoubleSlash, Name("-DFL-".into())]);
        assert_eq!(toks("NP-SBJ-2"), [Name("NP-SBJ-2".into())]);
        // …but an arrow right after a tag still splits.
        assert_eq!(toks("V->NP"), [Name("V".into()), Arrow, Name("NP".into())]);
        assert_eq!(
            toks("ADVP-LOC-CLR->X"),
            [Name("ADVP-LOC-CLR".into()), Arrow, Name("X".into())]
        );
    }

    #[test]
    fn all_arrow_forms() {
        assert_eq!(
            toks("-> --> <- <-- => ==> <= <=="),
            [
                Arrow,
                LongArrow,
                BackArrow,
                LongBackArrow,
                SibArrow,
                LongSibArrow,
                SibBackArrow,
                LongSibBackArrow,
            ]
        );
    }

    #[test]
    fn predicates_and_values() {
        assert_eq!(
            toks("//S[//_[@lex=saw]]"),
            [
                DoubleSlash,
                Name("S".into()),
                LBracket,
                DoubleSlash,
                Underscore,
                LBracket,
                At,
                Name("lex".into()),
                Eq,
                Name("saw".into()),
                RBracket,
                RBracket,
            ]
        );
    }

    #[test]
    fn scoping_and_alignment() {
        assert_eq!(
            toks("//VP[{//^VB->NP->PP$}]"),
            [
                DoubleSlash,
                Name("VP".into()),
                LBracket,
                LBrace,
                DoubleSlash,
                Caret,
                Name("VB".into()),
                Arrow,
                Name("NP".into()),
                Arrow,
                Name("PP".into()),
                Dollar,
                RBrace,
                RBracket,
            ]
        );
    }

    #[test]
    fn quoted_literals() {
        assert_eq!(toks("'PRP$'"), [Literal("PRP$".into())]);
        assert_eq!(toks("\"hello world\""), [Literal("hello world".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn doubled_quotes_escape_the_quote_character() {
        assert_eq!(toks("'it''s'"), [Literal("it's".into())]);
        assert_eq!(toks("\"say \"\"hi\"\"\""), [Literal("say \"hi\"".into())]);
        // The other quote character needs no escape.
        assert_eq!(toks("'a\"b'"), [Literal("a\"b".into())]);
        assert_eq!(toks("\"a'b\""), [Literal("a'b".into())]);
        // An escaped quote at the very end, and the empty literal.
        assert_eq!(toks("''''"), [Literal("'".into())]);
        assert_eq!(toks("''"), [Literal(String::new())]);
        // A dangling doubled quote is still unterminated.
        assert!(tokenize("'oops''").is_err());
    }

    #[test]
    fn closure_markers() {
        assert_eq!(toks("->* =>+"), [Arrow, Star, SibArrow, Plus]);
    }

    #[test]
    fn numbers_lex_as_names() {
        assert_eq!(toks("1929"), [Name("1929".into())]);
        assert_eq!(
            toks("position()=1"),
            [
                Name("position".into()),
                LParen,
                RParen,
                Eq,
                Name("1".into())
            ]
        );
    }

    #[test]
    fn axis_names_with_double_colon() {
        assert_eq!(
            toks("/descendant::NP"),
            [
                Slash,
                Name("descendant".into()),
                ColonColon,
                Name("NP".into())
            ]
        );
        assert_eq!(
            toks("\\ancestor::S"),
            [
                Backslash,
                Name("ancestor".into()),
                ColonColon,
                Name("S".into())
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("!x").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize(":x").is_err());
    }

    #[test]
    fn offsets_point_into_source() {
        let spans = tokenize("//NP ->NN").unwrap();
        assert_eq!(spans[0].offset, 0);
        assert_eq!(spans[1].offset, 2);
        assert_eq!(spans[2].offset, 5);
        assert_eq!(spans[3].offset, 7);
        // End offsets are one past the token's last character.
        assert_eq!(spans[0].end, 2);
        assert_eq!(spans[1].end, 4);
        assert_eq!(spans[2].end, 7);
        assert_eq!(spans[3].end, 9);
        // A quoted literal's span covers the quotes.
        let spans = tokenize("'PRP$'").unwrap();
        assert_eq!((spans[0].offset, spans[0].end), (0, 6));
    }
}
