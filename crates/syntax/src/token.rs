//! Token inventory for the LPath lexer.

use std::fmt;

/// A lexical token. Position information lives alongside in
/// [`crate::lexer::Spanned`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// `/` — child axis (or axis-name introducer).
    Slash,
    /// `//` — descendant.
    DoubleSlash,
    /// `\` — parent axis (or axis-name introducer).
    Backslash,
    /// `\\` — ancestor (abbreviation for `\ancestor::`).
    DoubleBackslash,
    /// `.` — self axis.
    Dot,
    /// `@` — attribute axis.
    At,
    /// `::` — axis/test separator.
    ColonColon,
    /// `->` — immediate-following.
    Arrow,
    /// `-->` — following.
    LongArrow,
    /// `<-` — immediate-preceding.
    BackArrow,
    /// `<--` — preceding.
    LongBackArrow,
    /// `=>` — immediate-following-sibling.
    SibArrow,
    /// `==>` — following-sibling.
    LongSibArrow,
    /// `<=` — immediate-preceding-sibling.
    SibBackArrow,
    /// `<==` — preceding-sibling.
    LongSibBackArrow,
    /// `*` — reflexive-transitive closure marker (postfix on an
    /// immediate axis), e.g. `->*` is following-or-self.
    Star,
    /// `+` — transitive closure marker, e.g. `->+` ≡ `-->`.
    Plus,
    /// `^` — left edge alignment.
    Caret,
    /// `$` — right edge alignment.
    Dollar,
    /// `_` — wildcard node test.
    Underscore,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{` — scope open.
    LBrace,
    /// `}` — scope close.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,` — argument separator in function calls.
    Comma,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<` (numeric comparison; note `<=`/`<-`/`<--`/`<==` lex as axes).
    Lt,
    /// `>`.
    Gt,
    /// A name: tag, attribute name, axis name, keyword (`and`, `or`,
    /// `not`, `position`, `last`) or unquoted literal value. Includes
    /// Penn Treebank tags such as `-NONE-` and `NP-SBJ-2`.
    Name(String),
    /// A quoted literal (single or double quotes), unescaped.
    Literal(String),
}

impl Token {
    /// Render the token as it would appear in a query.
    pub fn as_str(&self) -> &str {
        match self {
            Token::Slash => "/",
            Token::DoubleSlash => "//",
            Token::Backslash => "\\",
            Token::DoubleBackslash => "\\\\",
            Token::Dot => ".",
            Token::At => "@",
            Token::ColonColon => "::",
            Token::Arrow => "->",
            Token::LongArrow => "-->",
            Token::BackArrow => "<-",
            Token::LongBackArrow => "<--",
            Token::SibArrow => "=>",
            Token::LongSibArrow => "==>",
            Token::SibBackArrow => "<=",
            Token::LongSibBackArrow => "<==",
            Token::Star => "*",
            Token::Plus => "+",
            Token::Caret => "^",
            Token::Dollar => "$",
            Token::Underscore => "_",
            Token::LBracket => "[",
            Token::RBracket => "]",
            Token::LBrace => "{",
            Token::RBrace => "}",
            Token::LParen => "(",
            Token::RParen => ")",
            Token::Comma => ",",
            Token::Eq => "=",
            Token::Ne => "!=",
            Token::Lt => "<",
            Token::Gt => ">",
            Token::Name(s) | Token::Literal(s) => s,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Literal(s) => write!(f, "'{s}'"),
            t => f.write_str(t.as_str()),
        }
    }
}
