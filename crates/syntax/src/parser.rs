//! Recursive-descent parser for LPath (paper Figure 4 plus the XPath 1.0
//! remainder).
//!
//! Deviations from XPath 1.0 worth knowing:
//!
//! * `_` is the wildcard node test and `*`/`+` are closure markers on
//!   the immediate horizontal axes (`->*` is following-or-self, `->+` ≡
//!   `-->`), following the paper's footnote 2;
//! * a leading `//` inside a predicate or scope is the **descendant
//!   axis from the context node**, not a document-absolute path — this
//!   is what makes the paper's Q1 `//S[//_[@lex=saw]]` mean "sentence
//!   containing *saw*";
//! * `position()`/`last()` comparisons are parsed for XPath
//!   compatibility; engines may reject them where the paper's relational
//!   translation has no counterpart.

use crate::ast::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Span, Step, StrFunc};
use crate::error::SyntaxError;
use crate::lexer::{tokenize, Spanned};
use crate::token::Token;

/// Parse a complete LPath query.
pub fn parse(src: &str) -> Result<Path, SyntaxError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let absolute = matches!(p.peek(), Some(Token::Slash | Token::DoubleSlash));
    let mut path = p.path()?;
    path.absolute = absolute;
    if let Some(s) = p.tokens.get(p.pos) {
        return Err(SyntaxError::at(
            s.offset,
            format!("unexpected '{}' after end of query", s.token),
        ));
    }
    if path.steps.is_empty() && path.scope.is_none() {
        return Err(SyntaxError::at(0, "empty query"));
    }
    Ok(path)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or_else(
            || self.tokens.last().map_or(0, |s| s.offset + 1),
            |s| s.offset,
        )
    }

    /// Byte offset one past the last consumed token (0 before any).
    fn last_end(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.tokens[self.pos - 1].end
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), SyntaxError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(SyntaxError::at(
                self.offset(),
                format!("expected '{want}', found '{t}'"),
            )),
            None => Err(SyntaxError::at(
                self.offset(),
                format!("expected '{want}', found end of query"),
            )),
        }
    }

    /// `RLP ::= HP | HP '{' RLP '}'` — a step sequence plus optional
    /// scoped continuation.
    fn path(&mut self) -> Result<Path, SyntaxError> {
        let mut steps = Vec::new();
        // A relative path may begin with a bare name or wildcard
        // (implicit child axis, XPath style) — but only as the very
        // first step.
        if let Some(Token::Name(_) | Token::Literal(_) | Token::Underscore) = self.peek() {
            if !matches!(self.peek2(), Some(Token::ColonColon | Token::LParen))
                || matches!(self.peek(), Some(Token::Underscore))
            {
                let start = self.offset();
                let test = self.node_test()?;
                let mut step = Step::new(Axis::Child, test);
                if matches!(self.peek(), Some(Token::Dollar)) {
                    self.pos += 1;
                    step.right_align = true;
                }
                self.predicates(&mut step)?;
                step.span = Span::new(start, self.last_end());
                steps.push(step);
            } else if matches!(self.peek2(), Some(Token::ColonColon)) {
                // `self::NP` style named-axis first step.
                let step = self.named_axis_step()?;
                steps.push(step);
            }
        }
        while let Some(step) = self.try_step()? {
            steps.push(step);
        }
        let scope = if matches!(self.peek(), Some(Token::LBrace)) {
            self.pos += 1;
            let inner = self.path()?;
            self.expect(&Token::RBrace)?;
            if inner.steps.is_empty() && inner.scope.is_none() {
                return Err(SyntaxError::at(self.offset(), "empty scope braces"));
            }
            Some(Box::new(inner))
        } else {
            None
        };
        Ok(Path {
            absolute: false,
            steps,
            scope,
        })
    }

    /// Parse one step if the next token starts one.
    fn try_step(&mut self) -> Result<Option<Step>, SyntaxError> {
        let start = self.offset();
        let axis = match self.peek() {
            Some(Token::Slash) => {
                // `/descendant::X` and friends: slash + axis name.
                self.pos += 1;
                if matches!(self.peek(), Some(Token::Dot)) {
                    // `/.` — an XPath-style self step.
                    self.pos += 1;
                    Axis::SelfAxis
                } else if let (Some(Token::Name(n)), Some(Token::ColonColon)) =
                    (self.peek(), self.peek2())
                {
                    let name = n.clone();
                    match Axis::from_name(&name) {
                        Some(a) => {
                            self.pos += 2;
                            a
                        }
                        None => {
                            return Err(SyntaxError::at(
                                self.offset(),
                                format!("unknown axis '{name}'"),
                            ))
                        }
                    }
                } else {
                    Axis::Child
                }
            }
            Some(Token::DoubleSlash) => {
                self.pos += 1;
                Axis::Descendant
            }
            Some(Token::Backslash) => {
                self.pos += 1;
                if let (Some(Token::Name(n)), Some(Token::ColonColon)) = (self.peek(), self.peek2())
                {
                    let name = n.clone();
                    match Axis::from_name(&name) {
                        Some(a) => {
                            self.pos += 2;
                            a
                        }
                        None => {
                            return Err(SyntaxError::at(
                                self.offset(),
                                format!("unknown axis '{name}'"),
                            ))
                        }
                    }
                } else {
                    Axis::Parent
                }
            }
            Some(Token::DoubleBackslash) => {
                self.pos += 1;
                Axis::Ancestor
            }
            Some(Token::Dot) => {
                self.pos += 1;
                Axis::SelfAxis
            }
            Some(Token::At) => {
                self.pos += 1;
                Axis::Attribute
            }
            Some(Token::Arrow) => {
                self.pos += 1;
                self.closure(
                    Axis::ImmediateFollowing,
                    Axis::Following,
                    Axis::FollowingOrSelf,
                )
            }
            Some(Token::LongArrow) => {
                self.pos += 1;
                Axis::Following
            }
            Some(Token::BackArrow) => {
                self.pos += 1;
                self.closure(
                    Axis::ImmediatePreceding,
                    Axis::Preceding,
                    Axis::PrecedingOrSelf,
                )
            }
            Some(Token::LongBackArrow) => {
                self.pos += 1;
                Axis::Preceding
            }
            Some(Token::SibArrow) => {
                self.pos += 1;
                self.closure(
                    Axis::ImmediateFollowingSibling,
                    Axis::FollowingSibling,
                    Axis::FollowingSiblingOrSelf,
                )
            }
            Some(Token::LongSibArrow) => {
                self.pos += 1;
                Axis::FollowingSibling
            }
            Some(Token::SibBackArrow) => {
                self.pos += 1;
                self.closure(
                    Axis::ImmediatePrecedingSibling,
                    Axis::PrecedingSibling,
                    Axis::PrecedingSiblingOrSelf,
                )
            }
            Some(Token::LongSibBackArrow) => {
                self.pos += 1;
                Axis::PrecedingSibling
            }
            _ => return Ok(None),
        };
        Ok(Some(self.finish_step(axis, start)?))
    }

    /// Apply a postfix closure marker (`+` transitive, `*` reflexive
    /// transitive) to an immediate axis.
    fn closure(&mut self, imm: Axis, plus: Axis, star: Axis) -> Axis {
        match self.peek() {
            Some(Token::Plus) => {
                self.pos += 1;
                plus
            }
            Some(Token::Star) => {
                self.pos += 1;
                star
            }
            _ => imm,
        }
    }

    /// A first step written `axis::test` with no leading slash
    /// (`self::NP` in predicates).
    fn named_axis_step(&mut self) -> Result<Step, SyntaxError> {
        let start = self.offset();
        let name = match self.bump() {
            Some(Token::Name(n)) => n,
            _ => unreachable!("caller checked"),
        };
        let axis = Axis::from_name(&name)
            .ok_or_else(|| SyntaxError::at(self.offset(), format!("unknown axis '{name}'")))?;
        self.expect(&Token::ColonColon)?;
        self.finish_step(axis, start)
    }

    /// Alignment, node test, alignment, predicates. `start` is the byte
    /// offset where the step's concrete syntax began (its axis token).
    fn finish_step(&mut self, axis: Axis, start: usize) -> Result<Step, SyntaxError> {
        let left_align = if matches!(self.peek(), Some(Token::Caret)) {
            self.pos += 1;
            true
        } else {
            false
        };
        let test = if axis == Axis::SelfAxis {
            // `.` may stand alone as a complete step.
            match self.peek() {
                Some(Token::Name(_) | Token::Underscore | Token::Literal(_)) => self.node_test()?,
                _ => NodeTest::Any,
            }
        } else {
            self.node_test()?
        };
        let right_align = if matches!(self.peek(), Some(Token::Dollar)) {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut step = Step {
            axis,
            test,
            left_align,
            right_align,
            predicates: Vec::new(),
            span: Span::default(),
        };
        self.predicates(&mut step)?;
        step.span = Span::new(start, self.last_end());
        Ok(step)
    }

    fn node_test(&mut self) -> Result<NodeTest, SyntaxError> {
        match self.bump() {
            Some(Token::Underscore) => Ok(NodeTest::Any),
            Some(Token::Name(n)) => Ok(NodeTest::Tag(n)),
            Some(Token::Literal(s)) => Ok(NodeTest::Tag(s)),
            Some(t) => Err(SyntaxError::at(
                self.offset().saturating_sub(1),
                format!("expected a node test, found '{t}'"),
            )),
            None => Err(SyntaxError::at(
                self.offset(),
                "expected a node test, found end of query",
            )),
        }
    }

    fn predicates(&mut self, step: &mut Step) -> Result<(), SyntaxError> {
        while matches!(self.peek(), Some(Token::LBracket)) {
            self.pos += 1;
            let p = self.or_expr()?;
            self.expect(&Token::RBracket)?;
            step.predicates.push(p);
        }
        Ok(())
    }

    fn or_expr(&mut self) -> Result<Pred, SyntaxError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Token::Name(n)) if n == "or") {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Pred::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Pred, SyntaxError> {
        let mut lhs = self.unary_expr()?;
        while matches!(self.peek(), Some(Token::Name(n)) if n == "and") {
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Pred::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Pred, SyntaxError> {
        match (self.peek(), self.peek2()) {
            (Some(Token::Name(n)), Some(Token::LParen)) if n == "not" => {
                self.pos += 2;
                let inner = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(Pred::not(inner))
            }
            (Some(Token::Name(n)), Some(Token::LParen)) if n == "position" => {
                self.pos += 2;
                self.expect(&Token::RParen)?;
                let op = self.cmp_op()?;
                let rhs = self.pos_rhs()?;
                Ok(Pred::Position(op, rhs))
            }
            (Some(Token::Name(n)), Some(Token::LParen)) if n == "last" => {
                self.pos += 2;
                self.expect(&Token::RParen)?;
                // Bare `[last()]` sugar for `position() = last()`.
                Ok(Pred::Position(CmpOp::Eq, PosRhs::Last))
            }
            (Some(Token::Name(n)), Some(Token::LParen)) if n == "count" => {
                self.pos += 2;
                let path = self.function_path()?;
                self.expect(&Token::RParen)?;
                let op = self.cmp_op()?;
                let value = self.number()?;
                Ok(Pred::Count { path, op, value })
            }
            (Some(Token::Name(n)), Some(Token::LParen)) if n == "string-length" => {
                self.pos += 2;
                let path = self.function_path()?;
                self.expect(&Token::RParen)?;
                let op = self.cmp_op()?;
                let value = self.number()?;
                Ok(Pred::StrLen { path, op, value })
            }
            (Some(Token::Name(n)), Some(Token::LParen)) if StrFunc::from_name(n).is_some() => {
                let func = StrFunc::from_name(n).expect("guard checked");
                self.pos += 2;
                let path = self.function_path()?;
                self.expect(&Token::Comma)?;
                let arg = match self.bump() {
                    Some(Token::Literal(s)) => s,
                    Some(Token::Name(s)) => s,
                    other => {
                        return Err(SyntaxError::at(
                            self.offset(),
                            format!(
                                "expected a string argument, found {}",
                                other.map_or_else(|| "end of query".into(), |t| format!("'{t}'"))
                            ),
                        ))
                    }
                };
                self.expect(&Token::RParen)?;
                Ok(Pred::StrCmp { func, path, arg })
            }
            (Some(Token::LParen), _) => {
                self.pos += 1;
                let inner = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            _ => {
                let path = self.path()?;
                if path.steps.is_empty() && path.scope.is_none() {
                    return Err(SyntaxError::at(
                        self.offset(),
                        "expected a predicate expression",
                    ));
                }
                // Optional comparison against a literal.
                if matches!(
                    self.peek(),
                    Some(Token::Eq | Token::Ne | Token::Lt | Token::Gt)
                ) {
                    let op = self.cmp_op()?;
                    let value = match self.bump() {
                        Some(Token::Name(n)) => n,
                        Some(Token::Literal(s)) => s,
                        Some(Token::Underscore) => "_".to_string(),
                        other => {
                            return Err(SyntaxError::at(
                                self.offset(),
                                format!(
                                    "expected a literal value, found {}",
                                    other.map_or_else(
                                        || "end of query".into(),
                                        |t| format!("'{t}'")
                                    )
                                ),
                            ))
                        }
                    };
                    Ok(Pred::Cmp { path, op, value })
                } else {
                    Ok(Pred::Exists(path))
                }
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SyntaxError> {
        match self.bump() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Ne) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            other => Err(SyntaxError::at(
                self.offset(),
                format!(
                    "expected a comparison operator, found {}",
                    other.map_or_else(|| "end of query".into(), |t| format!("'{t}'"))
                ),
            )),
        }
    }

    /// The path argument of a function call: a non-empty relative (or
    /// `//`-prefixed context-descendant) path.
    fn function_path(&mut self) -> Result<Path, SyntaxError> {
        let path = self.path()?;
        if path.steps.is_empty() && path.scope.is_none() {
            return Err(SyntaxError::at(self.offset(), "expected a path argument"));
        }
        Ok(path)
    }

    /// A bare non-negative integer literal.
    fn number(&mut self) -> Result<u32, SyntaxError> {
        match self.bump() {
            Some(Token::Name(n)) => n.parse().map_err(|_| {
                SyntaxError::at(
                    self.offset().saturating_sub(1),
                    format!("expected a number, found '{n}'"),
                )
            }),
            other => Err(SyntaxError::at(
                self.offset(),
                format!(
                    "expected a number, found {}",
                    other.map_or_else(|| "end of query".into(), |t| format!("'{t}'"))
                ),
            )),
        }
    }

    fn pos_rhs(&mut self) -> Result<PosRhs, SyntaxError> {
        match (self.peek(), self.peek2()) {
            (Some(Token::Name(n)), Some(Token::LParen)) if n == "last" => {
                self.pos += 2;
                self.expect(&Token::RParen)?;
                Ok(PosRhs::Last)
            }
            (Some(Token::Name(n)), _) => {
                let v: u32 = n.parse().map_err(|_| {
                    SyntaxError::at(self.offset(), format!("expected a number, found '{n}'"))
                })?;
                self.pos += 1;
                Ok(PosRhs::Const(v))
            }
            _ => Err(SyntaxError::at(
                self.offset(),
                "expected a number or last()",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Axis::*;

    fn q(src: &str) -> Path {
        parse(src).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    fn axes(p: &Path) -> Vec<Axis> {
        p.steps.iter().map(|s| s.axis).collect()
    }

    #[test]
    fn figure2_queries_parse() {
        for src in [
            "//S[//_[@lex=saw]]",
            "//V=>NP",
            "//V->NP",
            "//VP/V-->N",
            "//VP{/V-->N}",
            "//VP{/NP$}",
            "//VP{//NP$}",
        ] {
            let p = q(src);
            assert!(p.absolute, "{src}");
        }
    }

    #[test]
    fn figure6c_queries_parse() {
        for src in [
            "//S[//_[@lex=saw]]",
            "//VB->NP",
            "//VP/VB-->NN",
            "//VP{/VB-->NN}",
            "//VP{/NP$}",
            "//VP{//NP$}",
            "//VP[{//^VB->NP->PP$}]",
            "//S[//NP/ADJP]",
            "//NP[not(//JJ)]",
            "//NP[->PP[//IN[@lex=of]]=>VP]",
            "//S[{//_[@lex=what]->_[@lex=building]}]",
            "//_[@lex=rapprochement]",
            "//_[@lex=1929]",
            "//ADVP-LOC-CLR",
            "//WHPP",
            "//RRC/PP-TMP",
            "//UCP-PRD/ADJP-PRD",
            "//NP/NP/NP/NP/NP",
            "//VP/VP/VP",
            "//PP=>SBAR",
            "//ADVP=>ADJP",
            "//NP=>NP=>NP",
            "//VP=>VP",
        ] {
            q(src);
        }
    }

    #[test]
    fn axis_selection() {
        assert_eq!(
            axes(&q("//A/B\\C->D-->E=>F==>G")),
            [
                Descendant,
                Child,
                Parent,
                ImmediateFollowing,
                Following,
                ImmediateFollowingSibling,
                FollowingSibling,
            ]
        );
        assert_eq!(
            axes(&q("//A<-B<--C<=D<==E")),
            [
                Descendant,
                ImmediatePreceding,
                Preceding,
                ImmediatePrecedingSibling,
                PrecedingSibling,
            ]
        );
    }

    #[test]
    fn named_axes() {
        assert_eq!(axes(&q("/descendant::NP")), [Descendant]);
        assert_eq!(axes(&q("//X\\ancestor::S")), [Descendant, Ancestor]);
        assert_eq!(
            axes(&q("//X/following-sibling::_")),
            [Descendant, FollowingSibling]
        );
        assert_eq!(axes(&q("//X\\\\S")), [Descendant, Ancestor]);
    }

    #[test]
    fn closure_markers() {
        assert_eq!(axes(&q("//X->+Y")), [Descendant, Following]);
        assert_eq!(axes(&q("//X->*Y")), [Descendant, FollowingOrSelf]);
        assert_eq!(axes(&q("//X=>*Y")), [Descendant, FollowingSiblingOrSelf]);
        assert_eq!(axes(&q("//X<-*Y")), [Descendant, PrecedingOrSelf]);
        assert_eq!(axes(&q("//X<=+Y")), [Descendant, PrecedingSibling]);
    }

    #[test]
    fn scoping_structure() {
        let p = q("//VP{/V-->N}");
        assert_eq!(p.steps.len(), 1);
        let inner = p.scope.as_ref().unwrap();
        assert_eq!(axes(inner), [Child, Following]);
        assert!(inner.scope.is_none());

        let nested = q("//S{//VP{/V}}");
        assert_eq!(axes(nested.scope.as_ref().unwrap()), [Descendant]);
        assert!(nested.scope.as_ref().unwrap().scope.is_some());
    }

    #[test]
    fn alignment_flags() {
        let p = q("//VP{/NP$}");
        let inner = p.scope.as_ref().unwrap();
        assert!(inner.steps[0].right_align);
        assert!(!inner.steps[0].left_align);

        let p = q("//VP[{//^VB->NP->PP$}]");
        let pred = &p.steps[0].predicates[0];
        let Pred::Exists(path) = pred else {
            panic!("expected exists")
        };
        let scoped = path.scope.as_ref().unwrap();
        assert!(scoped.steps[0].left_align);
        assert!(scoped.steps[2].right_align);
    }

    #[test]
    fn predicate_comparison() {
        let p = q("//_[@lex=saw]");
        let Pred::Cmp { path, op, value } = &p.steps[0].predicates[0] else {
            panic!("expected cmp")
        };
        assert_eq!(path.steps[0].axis, Attribute);
        assert_eq!(path.steps[0].test, NodeTest::tag("lex"));
        assert_eq!(*op, CmpOp::Eq);
        assert_eq!(value, "saw");

        let p = q("//_[@lex!='multi word']");
        let Pred::Cmp { op, value, .. } = &p.steps[0].predicates[0] else {
            panic!("expected cmp")
        };
        assert_eq!(*op, CmpOp::Ne);
        assert_eq!(value, "multi word");
    }

    #[test]
    fn boolean_connectives() {
        let p = q("//NP[//JJ and //NN or not(//DT)]");
        let Pred::Or(lhs, rhs) = &p.steps[0].predicates[0] else {
            panic!("or at top")
        };
        assert!(matches!(**lhs, Pred::And(..)));
        assert!(matches!(**rhs, Pred::Not(..)));
    }

    #[test]
    fn position_and_last() {
        let p = q("//V/following-sibling::_[position()=1][self::NP]");
        assert_eq!(
            p.steps[1].predicates[0],
            Pred::Position(CmpOp::Eq, PosRhs::Const(1))
        );
        let Pred::Exists(sp) = &p.steps[1].predicates[1] else {
            panic!()
        };
        assert_eq!(sp.steps[0].axis, SelfAxis);

        let p = q("//VP/_[last()][self::NP]");
        assert_eq!(
            p.steps[1].predicates[0],
            Pred::Position(CmpOp::Eq, PosRhs::Last)
        );
    }

    #[test]
    fn function_library_predicates() {
        let p = q("//NP[count(//JJ)>2]");
        let Pred::Count { path, op, value } = &p.steps[0].predicates[0] else {
            panic!("expected count")
        };
        assert_eq!(path.steps[0].axis, Descendant);
        assert_eq!(*op, CmpOp::Gt);
        assert_eq!(*value, 2);

        let p = q("//_[contains(@lex, 'og')]");
        let Pred::StrCmp { func, path, arg } = &p.steps[0].predicates[0] else {
            panic!("expected contains")
        };
        assert_eq!(*func, crate::ast::StrFunc::Contains);
        assert_eq!(path.steps[0].axis, Attribute);
        assert_eq!(arg, "og");

        let p = q("//_[starts-with(@lex,s)]");
        assert!(matches!(
            &p.steps[0].predicates[0],
            Pred::StrCmp {
                func: crate::ast::StrFunc::StartsWith,
                ..
            }
        ));
        let p = q("//_[ends-with(@lex,'ing')]");
        assert!(matches!(
            &p.steps[0].predicates[0],
            Pred::StrCmp {
                func: crate::ast::StrFunc::EndsWith,
                ..
            }
        ));

        let p = q("//_[string-length(@lex)=3]");
        let Pred::StrLen { op, value, .. } = &p.steps[0].predicates[0] else {
            panic!("expected string-length")
        };
        assert_eq!(*op, CmpOp::Eq);
        assert_eq!(*value, 3);
    }

    #[test]
    fn function_library_composes_with_booleans() {
        let p = q("//NP[count(/NP)=0 and not(contains(@lex,x))]");
        let Pred::And(lhs, rhs) = &p.steps[0].predicates[0] else {
            panic!("and at top")
        };
        assert!(matches!(**lhs, Pred::Count { .. }));
        assert!(matches!(**rhs, Pred::Not(..)));
    }

    #[test]
    fn function_parse_errors() {
        for bad in [
            "//X[count()>1]",
            "//X[count(//Y)]",
            "//X[count(//Y)>z]",
            "//X[contains(@lex)]",
            "//X[contains(@lex,'a']",
            "//X[contains(,'a')]",
            "//X[string-length(@lex)>]",
            "//X[ends-with(@lex 'a')]",
        ] {
            assert!(parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn count_as_tag_name_still_parses_without_parens() {
        // A bare `count` not followed by `(` is an ordinary tag test.
        let p = q("//S[count]");
        let Pred::Exists(path) = &p.steps[0].predicates[0] else {
            panic!()
        };
        assert_eq!(path.steps[0].test, NodeTest::tag("count"));
    }

    #[test]
    fn bare_name_predicate_is_child_step() {
        let p = q("//S[NP]");
        let Pred::Exists(path) = &p.steps[0].predicates[0] else {
            panic!()
        };
        assert_eq!(path.steps[0].axis, Child);
        assert_eq!(path.steps[0].test, NodeTest::tag("NP"));
    }

    #[test]
    fn quoted_tags() {
        let p = q("//'PRP$'");
        assert_eq!(p.steps[0].test, NodeTest::tag("PRP$"));
        let p = q("//'.'");
        assert_eq!(p.steps[0].test, NodeTest::tag("."));
    }

    #[test]
    fn self_step() {
        let p = q("//NP/.");
        assert_eq!(p.steps[1].axis, SelfAxis);
        assert_eq!(p.steps[1].test, NodeTest::Any);
    }

    #[test]
    fn relative_queries() {
        let p = q("VP/V");
        assert!(!p.absolute);
        assert_eq!(axes(&p), [Child, Child]);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "//",
            "//VP{",
            "//VP{}",
            "//VP[",
            "//VP[]",
            "//VP]",
            "//VP[@lex=]",
            "//VP[not(//X]",
            "//VP)",
            "//unknown-axis::X/Y",
            "//X[position()=Y]",
        ] {
            assert!(parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn step_spans_cover_their_concrete_syntax() {
        let src = "//VP[@lex=saw]/NP$";
        let p = q(src);
        // First step: `//VP[@lex=saw]` — axis through closing bracket.
        assert_eq!((p.steps[0].span.start, p.steps[0].span.end), (0, 14));
        assert_eq!(
            &src[p.steps[0].span.start..p.steps[0].span.end],
            "//VP[@lex=saw]"
        );
        // Second step: `/NP$`.
        assert_eq!(&src[p.steps[1].span.start..p.steps[1].span.end], "/NP$");
        // The attribute sub-path inside the predicate has its own span.
        let Pred::Cmp { path, .. } = &p.steps[0].predicates[0] else {
            panic!("expected cmp")
        };
        assert_eq!(
            &src[path.steps[0].span.start..path.steps[0].span.end],
            "@lex"
        );
        // Scope continuations and bare-name first steps are spanned too.
        let src = "VP{/V->NP}";
        let p = q(src);
        assert_eq!(&src[p.steps[0].span.start..p.steps[0].span.end], "VP");
        let inner = p.scope.as_ref().unwrap();
        assert_eq!(
            &src[inner.steps[1].span.start..inner.steps[1].span.end],
            "->NP"
        );
        // Spans are ignored by structural equality.
        let mut a = q("//NP");
        let b = Path::absolute(vec![Step::new(Axis::Descendant, NodeTest::tag("NP"))]);
        assert_eq!(a, b);
        a.steps[0].span = crate::ast::Span::default();
        assert_eq!(a, b);
    }

    #[test]
    fn deep_nesting_round_trip_structure() {
        let p = q("//S[//NP[//JJ[@lex=old]]/PP]{//VP{/V->NP[not(//DT)]}}");
        assert!(p.scope.is_some());
        assert!(p.scope.as_ref().unwrap().scope.is_some());
        assert_eq!(p.total_steps(), 9);
    }
}
