//! Static analysis for LPath queries.
//!
//! A conservative analyzer over the parsed AST that runs before
//! planning. It reports *spanned diagnostics* — contradictions,
//! impossible positional constraints, unsatisfiable axis compositions,
//! dead or tautological predicate branches — and, when given the
//! corpus vocabulary (the symbol interner that already powers shard
//! pruning), proves some queries **statically empty**: a node test
//! naming a tag absent from the whole corpus can never match, however
//! large the corpus.
//!
//! The analysis is sound but incomplete: `statically_empty` is only
//! set when emptiness is provable from the AST (and vocabulary) alone,
//! so a query the analyzer passes may still return nothing — but a
//! query it rejects is *guaranteed* to return nothing, which lets the
//! engine swap in a constant-empty plan and the service skip shard
//! fan-out and cache insertion entirely.
//!
//! ```
//! use lpath_check::{check, check_with, Severity};
//! use lpath_syntax::parse;
//!
//! // Structural analysis needs no corpus:
//! let q = parse("//NP[position()=0]").unwrap();
//! let report = check(&q);
//! assert!(report.statically_empty);
//! assert_eq!(report.diagnostics[0].code, "impossible-position");
//!
//! // Vocabulary-aware emptiness needs the corpus symbol table:
//! let q = parse("//ZZZ").unwrap();
//! let vocab = ["S", "NP", "VP"];
//! let report = check_with(&q, |sym| vocab.contains(&sym));
//! assert!(report.statically_empty);
//! assert_eq!(report.errors().next().unwrap().code, "unknown-tag");
//!
//! // A clean query produces no diagnostics:
//! let q = parse("//NP/VP").unwrap();
//! assert!(check_with(&q, |sym| vocab.contains(&sym)).is_clean());
//! # let _ = Severity::Note;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;

pub use analyze::{check, check_with};

use std::fmt;

use lpath_syntax::{snippet, Span};

/// How serious a diagnostic is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// The query (or a provably load-bearing part of it) can never
    /// match: evaluation is pointless.
    Error,
    /// A part of the query is dead, tautological, or locally
    /// unsatisfiable without making the whole query empty.
    Warning,
    /// Supplementary information (e.g. the statically-empty verdict).
    Note,
}

impl Severity {
    /// The lowercase name used in renderings and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One finding, anchored to a byte range of the query source.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The lint code (stable, kebab-case; listed in `docs/DIALECT.md`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Source range the finding points at (the empty span on
    /// programmatically built ASTs).
    pub span: Span,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} @ {}..{}",
            self.severity.name(),
            self.code,
            self.message,
            self.span.start,
            self.span.end
        )
    }
}

/// The result of analyzing one query.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CheckReport {
    /// Proven to return zero rows on the corpus the vocabulary came
    /// from (always sound, never merely suspected).
    pub statically_empty: bool,
    /// All findings, in source order of discovery.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Render every diagnostic with a caret snippet into `src` (the
    /// query text the analyzed AST was parsed from):
    ///
    /// ```text
    /// error[unknown-tag]: no node in the corpus is tagged 'ZZZ'
    ///   | //ZZZ
    ///   | ^^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(d.severity.name());
            out.push('[');
            out.push_str(d.code);
            out.push_str("]: ");
            out.push_str(&d.message);
            out.push('\n');
            out.push_str(&snippet(src, d.span.start, d.span.end));
            out.push('\n');
        }
        out
    }

    /// The report as hand-rendered JSON (the same serde-free style as
    /// `Service::metrics()`):
    ///
    /// ```json
    /// {"statically_empty":true,"diagnostics":[
    ///   {"severity":"error","code":"unknown-tag",
    ///    "message":"...","span":{"start":2,"end":5}}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"statically_empty\":");
        out.push_str(if self.statically_empty {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\",\"span\":{{\"start\":{},\"end\":{}}}}}",
                d.severity.name(),
                lpath_obs::json::escape(d.code),
                lpath_obs::json::escape(&d.message),
                d.span.start,
                d.span.end
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_syntax::parse;

    #[test]
    fn report_renders_with_carets() {
        let q = parse("//NP[position()=0]").unwrap();
        let r = check(&q);
        let text = r.render("//NP[position()=0]");
        assert!(text.contains("impossible-position"), "{text}");
        assert!(text.contains('^'), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let q = parse("//'a\"b'").unwrap();
        let r = check_with(&q, |_| false);
        let json = r.to_json();
        assert!(json.starts_with("{\"statically_empty\":true"), "{json}");
        assert!(json.contains("\\\""), "quote must be escaped: {json}");
        assert!(json.ends_with("]}"), "{json}");
        // Balanced braces/brackets (cheap well-formedness probe).
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count(), "{json}");
    }

    #[test]
    fn clean_report_is_empty_json() {
        let r = CheckReport::default();
        assert_eq!(
            r.to_json(),
            "{\"statically_empty\":false,\"diagnostics\":[]}"
        );
    }
}
