//! The conservative emptiness/contradiction analyzer.
//!
//! Every rule here is justified against the walker's reference
//! semantics (and the relational translation agrees on each):
//!
//! * evaluation of an **absolute** path starts at the document node,
//!   whose only non-empty axes are `child` (the root) and
//!   `descendant`/`descendant-or-self`;
//! * a `self` step keeps the context node, so a tag test conflicting
//!   with the previous step's tag test can never hold;
//! * node tests and attribute names resolve through the corpus symbol
//!   interner — a symbol absent from the interner matches nothing;
//! * predicates filter a step's candidate list *sequentially*, with
//!   positions renumbered between brackets; after a `position()=n`
//!   (or `last()`) bracket at most one candidate survives, so later
//!   brackets see `position() = last() = 1`;
//! * `path op literal`, `contains`/`starts-with`/`ends-with` and
//!   `string-length` inspect *string values*, which only attribute
//!   points carry: a comparison over a path that does not end on an
//!   attribute step is always false;
//! * a node holds at most one value per attribute name, so
//!   `@a=x and @a=y` (x ≠ y) on a single-step attribute path is a
//!   contradiction.

use lpath_syntax::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Span, Step};

use crate::{CheckReport, Diagnostic, Severity};

/// Analyze `query` without vocabulary: structural lints only
/// (contradictions, impossible positions, unsatisfiable axes).
pub fn check(query: &Path) -> CheckReport {
    run(query, None)
}

/// Analyze `query` against a corpus vocabulary. `in_vocab` answers
/// whether a symbol is interned anywhere in the corpus; attribute
/// names are queried with their leading `@` (e.g. `@lex`), matching
/// the interner convention.
pub fn check_with(query: &Path, in_vocab: impl Fn(&str) -> bool) -> CheckReport {
    run(query, Some(&in_vocab))
}

fn run(query: &Path, vocab: Option<&dyn Fn(&str) -> bool>) -> CheckReport {
    let mut a = Analyzer {
        vocab,
        diags: Vec::new(),
    };
    let empty = a.spine(query, query.absolute);
    if empty {
        let span = a
            .diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map_or_else(Span::default, |d| d.span);
        a.diag(
            Severity::Note,
            "statically-empty",
            "the query is provably empty: execution will be skipped",
            span,
        );
    }
    CheckReport {
        statically_empty: empty,
        diagnostics: a.diags,
    }
}

/// Three-valued verdict for a predicate expression.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Truth {
    False,
    True,
    Unknown,
}

impl Truth {
    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn not(self) -> Truth {
        match self {
            Truth::False => Truth::True,
            Truth::True => Truth::False,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

struct Analyzer<'a> {
    vocab: Option<&'a dyn Fn(&str) -> bool>,
    diags: Vec<Diagnostic>,
}

impl Analyzer<'_> {
    fn diag(
        &mut self,
        severity: Severity,
        code: &'static str,
        message: impl Into<String>,
        span: Span,
    ) {
        self.diags.push(Diagnostic {
            severity,
            code,
            message: message.into(),
            span,
        });
    }

    /// Analyze a result spine (the head steps plus every scoped
    /// continuation — all of them produce the final answer). Returns
    /// whether the whole query is provably empty. `doc_context` is
    /// true only for the top-level absolute path: that is the one
    /// place evaluation starts at the document node.
    fn spine(&mut self, path: &Path, doc_context: bool) -> bool {
        let mut empty = false;
        let mut prev: Option<&Step> = None;
        for (i, step) in path.steps.iter().enumerate() {
            if doc_context
                && i == 0
                && !matches!(
                    step.axis,
                    Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
                )
            {
                self.diag(
                    Severity::Error,
                    "unsatisfiable-axis",
                    format!(
                        "axis '{}' never matches from the document node \
                         (only child and descendant do)",
                        step.axis.name()
                    ),
                    step.span,
                );
                empty = true;
            }
            empty |= self.step(step, prev, Severity::Error);
            prev = Some(step);
        }
        if let Some(scope) = &path.scope {
            // The continuation runs from each head result (an element
            // context), and its results *are* the query's results.
            empty |= self.spine(scope, false);
        }
        empty
    }

    /// Analyze one step — its node test against the vocabulary, a
    /// `self`-axis conflict with the preceding step, and its predicate
    /// brackets. `sev` is `Error` on the result spine and `Warning`
    /// inside predicate sub-paths (where emptiness only falsifies the
    /// enclosing predicate). Returns whether the step provably matches
    /// nothing.
    fn step(&mut self, step: &Step, prev: Option<&Step>, sev: Severity) -> bool {
        let mut empty = false;
        // `self::T2` directly after a step testing T1: the context node
        // is unchanged, so conflicting tags can never both hold. (An
        // attribute step is exempt: navigation from an attribute point
        // continues from its *owner element*, whose tag is unrelated.)
        if step.axis == Axis::SelfAxis {
            if let Some(p) = prev {
                if p.axis != Axis::Attribute {
                    if let (NodeTest::Tag(t1), NodeTest::Tag(t2)) = (&p.test, &step.test) {
                        if t1 != t2 {
                            self.diag(
                                sev,
                                "unsatisfiable-axis",
                                format!(
                                    "self step tests '{t2}' but the context node \
                                     is already known to be '{t1}'"
                                ),
                                step.span,
                            );
                            empty = true;
                        }
                    }
                }
            }
        }
        // Vocabulary: a symbol absent from the corpus interner matches
        // nothing, whatever the axis.
        if let Some(vocab) = self.vocab {
            match (step.axis, &step.test) {
                (Axis::Attribute, NodeTest::Tag(t)) => {
                    if !vocab(&format!("@{t}")) {
                        self.diag(
                            sev,
                            "unknown-attribute",
                            format!("no node in the corpus has an attribute '@{t}'"),
                            step.span,
                        );
                        empty = true;
                    }
                }
                (Axis::Attribute, NodeTest::Any) => {}
                (_, NodeTest::Tag(t)) => {
                    if !vocab(t) {
                        self.diag(
                            sev,
                            "unknown-tag",
                            format!("no node in the corpus is tagged '{t}'"),
                            step.span,
                        );
                        empty = true;
                    }
                }
                (_, NodeTest::Any) => {}
            }
        }
        // Predicate brackets filter sequentially. `pinned` becomes true
        // once a bracket's top-level conjunction contains a positional
        // equality: at most one candidate survives it, so every later
        // bracket sees position() = last() = 1.
        let mut pinned = false;
        for pred in &step.predicates {
            match self.truth(pred, step, pinned) {
                Truth::False => {
                    self.diag(
                        sev,
                        "always-false-predicate",
                        "this predicate can never hold, so the step matches nothing",
                        step.span,
                    );
                    empty = true;
                }
                Truth::True => {
                    self.diag(
                        Severity::Warning,
                        "always-true-predicate",
                        "this predicate always holds and filters nothing",
                        step.span,
                    );
                }
                Truth::Unknown => {}
            }
            if conjuncts(pred)
                .iter()
                .any(|c| matches!(c, Pred::Position(CmpOp::Eq, _)))
            {
                pinned = true;
            }
        }
        empty
    }

    /// Is this predicate sub-path provably empty (it can never select
    /// anything from any candidate node)? `owner` is the step the
    /// predicate hangs off — its tag feeds the `self`-axis conflict
    /// rule for the sub-path's first step.
    fn sub_path_empty(&mut self, path: &Path, owner: &Step) -> bool {
        let mut empty = false;
        let mut prev = Some(owner);
        for step in &path.steps {
            empty |= self.step(step, prev, Severity::Warning);
            prev = Some(step);
        }
        if let Some(scope) = &path.scope {
            let scope_owner = path.steps.last().unwrap_or(owner);
            empty |= self.sub_path_empty(scope, scope_owner);
        }
        empty
    }

    /// The three-valued verdict of one predicate expression over the
    /// candidates of `owner`.
    fn truth(&mut self, pred: &Pred, owner: &Step, pinned: bool) -> Truth {
        match pred {
            Pred::And(..) => {
                let cs = conjuncts(pred);
                for (i, a) in cs.iter().enumerate() {
                    for b in &cs[i + 1..] {
                        if let Some((code, msg)) = contradicts(a, b) {
                            self.diag(Severity::Warning, code, msg, owner.span);
                            // Still evaluate both sides for their own
                            // diagnostics, but the verdict is fixed.
                            for c in &cs {
                                let _ = self.truth(c, owner, pinned);
                            }
                            return Truth::False;
                        }
                    }
                }
                let mut t = Truth::True;
                for c in cs {
                    t = t.and(self.truth(c, owner, pinned));
                }
                t
            }
            Pred::Or(a, b) => {
                if negation_pair(a, b) {
                    self.diag(
                        Severity::Warning,
                        "always-true-predicate",
                        "'p or not(p)' is a tautology",
                        owner.span,
                    );
                    return Truth::True;
                }
                let ta = self.truth(a, owner, pinned);
                let tb = self.truth(b, owner, pinned);
                match (ta, tb) {
                    (Truth::False, Truth::False) => Truth::False,
                    (Truth::True, _) | (_, Truth::True) => Truth::True,
                    (Truth::False, _) | (_, Truth::False) => {
                        self.diag(
                            Severity::Warning,
                            "dead-or-branch",
                            "one side of this 'or' can never hold",
                            owner.span,
                        );
                        Truth::Unknown
                    }
                    _ => Truth::Unknown,
                }
            }
            // Positions are unaffected by negation: the bracket's
            // candidate list (and so `pinned`) is the same inside.
            Pred::Not(inner) => self.truth(inner, owner, pinned).not(),
            Pred::Exists(path) => {
                if self.sub_path_empty(path, owner) {
                    Truth::False
                } else {
                    Truth::Unknown
                }
            }
            Pred::Position(op, rhs) => {
                let t = position_truth(*op, *rhs, pinned);
                if t == Truth::False {
                    self.diag(
                        Severity::Warning,
                        "impossible-position",
                        format!(
                            "position(){}{} can never hold here (positions are \
                             1-based{})",
                            op.symbol(),
                            match rhs {
                                PosRhs::Const(n) => n.to_string(),
                                PosRhs::Last => "last()".into(),
                            },
                            if pinned {
                                " and an earlier positional bracket left at most \
                                 one candidate"
                            } else {
                                ""
                            }
                        ),
                        owner.span,
                    );
                }
                t
            }
            Pred::Cmp { path, op, value } => {
                if self.sub_path_empty(path, owner) {
                    return Truth::False;
                }
                match effective_final(path) {
                    Some(fin) if fin.axis != Axis::Attribute => {
                        self.diag(
                            Severity::Warning,
                            "non-string-path",
                            "comparison over a path that does not end on an \
                             attribute: elements carry no string value, so this \
                             is always false",
                            pick_span(fin.span, owner.span),
                        );
                        Truth::False
                    }
                    Some(fin) => {
                        if *op == CmpOp::Eq {
                            if let Some(vocab) = self.vocab {
                                if !vocab(value) {
                                    self.diag(
                                        Severity::Warning,
                                        "unknown-value",
                                        format!(
                                            "the literal '{value}' occurs nowhere \
                                             in the corpus, so this equality is \
                                             always false"
                                        ),
                                        pick_span(fin.span, owner.span),
                                    );
                                    return Truth::False;
                                }
                            }
                        }
                        Truth::Unknown
                    }
                    None => Truth::Unknown,
                }
            }
            Pred::Count { path, op, value } => {
                if *op == CmpOp::Lt && *value == 0 {
                    self.diag(
                        Severity::Warning,
                        "impossible-count",
                        "count() is never negative, so 'count(..)<0' is always false",
                        owner.span,
                    );
                    return Truth::False;
                }
                if self.sub_path_empty(path, owner) {
                    // The counted set is provably empty: the predicate
                    // reduces to `0 op value`.
                    let holds = match op {
                        CmpOp::Eq => 0 == *value,
                        CmpOp::Ne => 0 != *value,
                        CmpOp::Lt => 0 < *value,
                        CmpOp::Gt => false,
                    };
                    return if holds { Truth::True } else { Truth::False };
                }
                Truth::Unknown
            }
            Pred::StrCmp { path, .. } | Pred::StrLen { path, .. } => {
                if self.sub_path_empty(path, owner) {
                    return Truth::False;
                }
                match effective_final(path) {
                    Some(fin) if fin.axis != Axis::Attribute => {
                        self.diag(
                            Severity::Warning,
                            "non-string-path",
                            "string function over a path that does not end on an \
                             attribute: elements carry no string value, so this \
                             is always false",
                            pick_span(fin.span, owner.span),
                        );
                        Truth::False
                    }
                    _ => Truth::Unknown,
                }
            }
        }
    }
}

/// Flatten a conjunction into its top-level conjuncts.
fn conjuncts(p: &Pred) -> Vec<&Pred> {
    match p {
        Pred::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other],
    }
}

/// Are `a` and `b` structural negations of each other?
fn negation_pair(a: &Pred, b: &Pred) -> bool {
    matches!(b, Pred::Not(inner) if **inner == *a) || matches!(a, Pred::Not(inner) if **inner == *b)
}

/// A single-step `@name` path (no scope): the one shape where a node
/// holds at most one value, making equality contradictions sound.
fn single_attr_step(p: &Path) -> bool {
    p.scope.is_none()
        && p.steps.len() == 1
        && p.steps[0].axis == Axis::Attribute
        && matches!(p.steps[0].test, NodeTest::Tag(_))
}

/// Do two conjuncts contradict each other outright?
fn contradicts(a: &Pred, b: &Pred) -> Option<(&'static str, String)> {
    if negation_pair(a, b) {
        return Some(("contradiction", "'p and not(p)' can never hold".to_string()));
    }
    if let (
        Pred::Cmp {
            path: p1,
            op: CmpOp::Eq,
            value: v1,
        },
        Pred::Cmp {
            path: p2,
            op: CmpOp::Eq,
            value: v2,
        },
    ) = (a, b)
    {
        // Sound only for a single `@name` step: a node has at most one
        // value per attribute name, while longer paths select values
        // from *several* nodes and may satisfy both equalities.
        if single_attr_step(p1) && p1 == p2 && v1 != v2 {
            return Some((
                "contradictory-attributes",
                format!("an attribute cannot equal both '{v1}' and '{v2}'"),
            ));
        }
    }
    if let (Pred::Position(op1, PosRhs::Const(n1)), Pred::Position(op2, PosRhs::Const(n2))) = (a, b)
    {
        let clash = match (op1, op2) {
            (CmpOp::Eq, CmpOp::Eq) => n1 != n2,
            (CmpOp::Eq, CmpOp::Lt) => n1 >= n2,
            (CmpOp::Eq, CmpOp::Gt) => n1 <= n2,
            (CmpOp::Lt, CmpOp::Eq) => n2 >= n1,
            (CmpOp::Gt, CmpOp::Eq) => n2 <= n1,
            _ => false,
        };
        if clash {
            return Some((
                "impossible-position",
                format!(
                    "position(){}{n1} and position(){}{n2} cannot both hold",
                    op1.symbol(),
                    op2.symbol()
                ),
            ));
        }
    }
    None
}

/// The step whose values a string comparison inspects: the last step of
/// the innermost scope (scope results are the path's results).
fn effective_final(path: &Path) -> Option<&Step> {
    match &path.scope {
        Some(inner) => effective_final(inner),
        None => path.steps.last(),
    }
}

/// Prefer a real source span over the empty programmatic one.
fn pick_span(primary: Span, fallback: Span) -> Span {
    if primary.is_unknown() {
        fallback
    } else {
        primary
    }
}

/// `position() op rhs` over a candidate list. Without `pinned` we only
/// know positions are 1-based and at most `last()`; with it (an earlier
/// positional-equality bracket) the list has at most one element, so
/// `position() = last() = 1` exactly.
fn position_truth(op: CmpOp, rhs: PosRhs, pinned: bool) -> Truth {
    if pinned {
        return match (op, rhs) {
            (CmpOp::Eq, PosRhs::Const(n)) => from_bool(n == 1),
            (CmpOp::Ne, PosRhs::Const(n)) => from_bool(n != 1),
            (CmpOp::Lt, PosRhs::Const(n)) => from_bool(1 < n),
            (CmpOp::Gt, PosRhs::Const(n)) => from_bool(n == 0),
            (CmpOp::Eq, PosRhs::Last) => Truth::True,
            (CmpOp::Ne | CmpOp::Lt | CmpOp::Gt, PosRhs::Last) => Truth::False,
        };
    }
    match (op, rhs) {
        (CmpOp::Eq, PosRhs::Const(0)) => Truth::False,
        (CmpOp::Lt, PosRhs::Const(0 | 1)) => Truth::False,
        (CmpOp::Gt, PosRhs::Const(0)) => Truth::True,
        (CmpOp::Ne, PosRhs::Const(0)) => Truth::True,
        (CmpOp::Gt, PosRhs::Last) => Truth::False,
        _ => Truth::Unknown,
    }
}

fn from_bool(b: bool) -> Truth {
    if b {
        Truth::True
    } else {
        Truth::False
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_syntax::parse;

    const VOCAB: [&str; 8] = ["S", "NP", "VP", "VB", "@lex", "@pos", "saw", "man"];

    fn vocab_check(src: &str) -> CheckReport {
        check_with(&parse(src).unwrap(), |s| VOCAB.contains(&s))
    }

    fn codes(r: &CheckReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_queries_stay_clean() {
        for src in [
            "//NP",
            "//S[//NP]/VP",
            "//NP[@lex=saw]",
            "//VP{/VB$}",
            "//NP[position()=2]",
            "//NP[count(//VB)>0]",
            "//NP[not(//VB)]",
            "//S[//NP or //VB]",
            "//NP[contains(@lex,zzz)]", // substring needs no vocab hit
            "//NP[@lex!=zzz]",          // != of unknown value is satisfiable
        ] {
            let r = vocab_check(src);
            assert!(!r.statically_empty, "{src}: {:?}", r.diagnostics);
            assert!(r.is_clean(), "{src}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn unknown_vocabulary_is_empty() {
        let r = vocab_check("//ZZZ");
        assert!(r.statically_empty);
        assert_eq!(codes(&r), ["unknown-tag", "statically-empty"]);

        let r = vocab_check("//NP@case");
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"unknown-attribute"));

        let r = vocab_check("//NP[@lex=zzz]");
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"unknown-value"));
        assert!(codes(&r).contains(&"always-false-predicate"));
    }

    #[test]
    fn unknown_vocab_in_predicate_is_warning_not_error() {
        // `not(//ZZZ)` is always TRUE — the query is satisfiable.
        let r = vocab_check("//NP[not(//ZZZ)]");
        assert!(!r.statically_empty, "{:?}", r.diagnostics);
        assert!(codes(&r).contains(&"unknown-tag"));
        assert!(codes(&r).contains(&"always-true-predicate"));
        assert!(r.errors().next().is_none());

        // But positively required, it falsifies the bracket.
        let r = vocab_check("//NP[//ZZZ]");
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"always-false-predicate"));
    }

    #[test]
    fn impossible_positions() {
        for src in [
            "//NP[position()=0]",
            "//NP[position()<1]",
            "//NP[position()>last()]",
            "//NP[position()=1][position()=2]", // pinned to 1 candidate
            "//NP[position()=1 and position()=2]",
            "//NP[position()=3 and position()<2]",
        ] {
            let r = check(&parse(src).unwrap());
            assert!(r.statically_empty, "{src}: {:?}", r.diagnostics);
            assert!(codes(&r).contains(&"impossible-position"), "{src}");
        }
        // The reverse order `[2][1]` is satisfiable (renumbering makes
        // the second bracket a tautology, not a contradiction).
        let r = check(&parse("//NP[position()=2][position()=1]").unwrap());
        assert!(!r.statically_empty, "{:?}", r.diagnostics);
        assert!(codes(&r).contains(&"always-true-predicate"));
        // And `[1][1]` is a tautological second bracket, not an error.
        let r = check(&parse("//NP[position()=1][position()=1]").unwrap());
        assert!(!r.statically_empty);
        assert!(codes(&r).contains(&"always-true-predicate"));
    }

    #[test]
    fn contradictions_and_tautologies() {
        let r = vocab_check("//NP[@lex=saw and @lex=man]");
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"contradictory-attributes"));

        let r = vocab_check("//NP[//VB and not(//VB)]");
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"contradiction"));

        let r = vocab_check("//NP[//VB or not(//VB)]");
        assert!(!r.statically_empty);
        assert!(codes(&r).contains(&"always-true-predicate"));

        // Inside not(), a contradiction flips to an always-true bracket.
        let r = vocab_check("//NP[not(//VB and not(//VB))]");
        assert!(!r.statically_empty, "{:?}", r.diagnostics);
        assert!(codes(&r).contains(&"always-true-predicate"));

        // Longer attribute paths select values from several nodes:
        // both equalities can hold, so no contradiction is reported.
        let r = vocab_check("//S[//_@lex=saw and //_@lex=man]");
        assert!(!r.statically_empty, "{:?}", r.diagnostics);
    }

    #[test]
    fn dead_or_branch_is_a_warning() {
        let r = vocab_check("//S[//ZZZ or //NP]");
        assert!(!r.statically_empty, "{:?}", r.diagnostics);
        assert!(codes(&r).contains(&"dead-or-branch"));
        // Both branches dead: the bracket is false, the query empty.
        let r = vocab_check("//S[//ZZZ or //YYY]");
        assert!(r.statically_empty);
    }

    #[test]
    fn unsatisfiable_axes() {
        // Absolute paths start at the document node.
        for src in ["/self::NP", "/parent::NP", "/following::NP"] {
            let r = check(&parse(src).unwrap());
            assert!(r.statically_empty, "{src}: {:?}", r.diagnostics);
            assert!(codes(&r).contains(&"unsatisfiable-axis"), "{src}");
        }
        // A relative path evaluates from the root element: fine.
        let r = check(&parse("self::NP").unwrap());
        assert!(!r.statically_empty, "{:?}", r.diagnostics);

        // Conflicting self-axis tag test.
        let r = check(&parse("//NP/self::VP").unwrap());
        assert!(r.statically_empty);
        // …also against the owner step from inside a predicate.
        let r = check(&parse("//NP[self::VP]").unwrap());
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"always-false-predicate"));
        // Matching or wildcard self tests are fine.
        assert!(!check(&parse("//NP/self::NP").unwrap()).statically_empty);
        assert!(!check(&parse("//NP[self::NP]").unwrap()).statically_empty);
        assert!(!check(&parse("//NP/.").unwrap()).statically_empty);
    }

    #[test]
    fn non_string_paths_are_always_false() {
        let r = check(&parse("//S[//NP=saw]").unwrap());
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"non-string-path"));

        let r = check(&parse("//S[contains(//NP,x)]").unwrap());
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"non-string-path"));

        let r = check(&parse("//S[string-length(//NP)=3]").unwrap());
        assert!(r.statically_empty);

        // Attribute-final paths — directly or through a scope — are fine.
        assert!(!check(&parse("//S[//_@lex=saw]").unwrap()).statically_empty);
        assert!(!check(&parse("//S[//_{@lex}=saw]").unwrap()).statically_empty);
    }

    #[test]
    fn count_over_empty_path_folds_to_a_constant() {
        // count(//ZZZ) = 0, so =0 is always true…
        let r = vocab_check("//NP[count(//ZZZ)=0]");
        assert!(!r.statically_empty, "{:?}", r.diagnostics);
        assert!(codes(&r).contains(&"always-true-predicate"));
        // …and >0 always false.
        let r = vocab_check("//NP[count(//ZZZ)>0]");
        assert!(r.statically_empty);
        // count is unsigned: <0 can never hold.
        let r = check(&parse("//NP[count(//VB)<0]").unwrap());
        assert!(r.statically_empty);
        assert!(codes(&r).contains(&"impossible-count"));
    }

    #[test]
    fn scope_spine_emptiness_propagates() {
        // The scoped continuation produces the results; if it names an
        // unknown tag the whole query is empty.
        let r = vocab_check("//VP{/ZZZ}");
        assert!(r.statically_empty);
        // A dead head also empties the query.
        let r = vocab_check("//ZZZ{/NP}");
        assert!(r.statically_empty);
    }

    #[test]
    fn diagnostics_carry_real_spans() {
        let src = "//S[//_[@lex=saw]]/ZZZ";
        let r = vocab_check(src);
        let d = r.errors().next().unwrap();
        assert_eq!(&src[d.span.start..d.span.end], "/ZZZ");
    }

    #[test]
    fn structural_check_without_vocab_ignores_names() {
        // Without a vocabulary, unknown tags cannot be diagnosed.
        let r = check(&parse("//TOTALLY-UNKNOWN").unwrap());
        assert!(!r.statically_empty);
        assert!(r.is_clean());
    }
}
