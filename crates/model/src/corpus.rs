//! Corpora: collections of trees sharing one symbol table, plus the
//! statistics the paper reports in Figure 6(a) and 6(b).

use std::collections::HashMap;

use crate::ptb;
use crate::symbols::{Interner, Sym};
use crate::tree::Tree;

/// A treebank: trees plus their shared interner.
#[derive(Clone, Default)]
pub struct Corpus {
    interner: Interner,
    trees: Vec<Tree>,
}

/// The Figure 6(a) characteristics of a data set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusStats {
    /// Number of trees (sentences).
    pub trees: usize,
    /// Total element nodes over all trees ("Tree Nodes" in Fig 6a).
    pub total_nodes: usize,
    /// Total terminals (words).
    pub total_tokens: usize,
    /// Number of distinct tags ("Unique Tags").
    pub unique_tags: usize,
    /// Maximum node depth over all trees ("Maximum Depth").
    pub max_depth: u32,
    /// Size of the uncompressed bracketed ASCII rendering ("File Size").
    pub ascii_bytes: usize,
}

impl Corpus {
    /// An empty corpus with a fresh symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The corpus's symbol table.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the symbol table (for loaders).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Intern a string in this corpus's symbol table.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.interner.intern(s)
    }

    /// Resolve a symbol to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Append a tree (its symbols must come from this corpus's table).
    pub fn add_tree(&mut self, tree: Tree) {
        self.trees.push(tree);
    }

    /// All trees, corpus order.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// One tree by index.
    pub fn tree(&self, idx: usize) -> &Tree {
        &self.trees[idx]
    }

    /// Compute the Figure 6(a) statistics.
    pub fn stats(&self) -> CorpusStats {
        let mut total_nodes = 0;
        let mut total_tokens = 0;
        let mut max_depth = 0;
        let mut tags: Vec<bool> = vec![false; self.interner.len()];
        let mut ascii_bytes = 0;
        let mut buf = String::new();
        for t in &self.trees {
            total_nodes += t.len();
            total_tokens += t.leaf_count();
            max_depth = max_depth.max(t.max_depth());
            for id in t.preorder() {
                tags[t.node(id).name.0 as usize] = true;
            }
            buf.clear();
            ptb::write_tree(t, &self.interner, &mut buf, false);
            ascii_bytes += buf.len() + 5; // "( " + " )" + newline, as on disk
        }
        CorpusStats {
            trees: self.trees.len(),
            total_nodes,
            total_tokens,
            unique_tags: tags.iter().filter(|&&b| b).count(),
            max_depth,
            ascii_bytes,
        }
    }

    /// Tag frequency histogram, most frequent first (ties broken by tag
    /// string for determinism). This regenerates Figure 6(b).
    pub fn tag_histogram(&self) -> Vec<(Sym, u64)> {
        let mut counts: HashMap<Sym, u64> = HashMap::new();
        for t in &self.trees {
            for id in t.preorder() {
                *counts.entry(t.node(id).name).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(Sym, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.resolve(a.0).cmp(self.resolve(b.0)))
        });
        v
    }

    /// The `k` most frequent tags with their counts, as strings.
    pub fn top_tags(&self, k: usize) -> Vec<(String, u64)> {
        self.tag_histogram()
            .into_iter()
            .take(k)
            .map(|(s, c)| (self.resolve(s).to_string(), c))
            .collect()
    }

    /// Word (terminal `@lex`) frequency histogram, most frequent first.
    pub fn word_histogram(&self) -> Vec<(Sym, u64)> {
        let lex = match self.interner.get("@lex") {
            Some(s) => s,
            None => return Vec::new(),
        };
        let mut counts: HashMap<Sym, u64> = HashMap::new();
        for t in &self.trees {
            for id in t.leaves() {
                if let Some(w) = t.node(id).attr(lex) {
                    *counts.entry(w).or_insert(0) += 1;
                }
            }
        }
        let mut v: Vec<(Sym, u64)> = counts.into_iter().collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| self.resolve(a.0).cmp(self.resolve(b.0)))
        });
        v
    }

    /// Replicate the corpus by `factor`, as in the paper's scalability
    /// experiment (§5.3: "we replicated the WSJ dataset between 0.5 and
    /// 4 times"). `factor = 0.5` keeps the first half of the trees;
    /// `factor = 2.0` duplicates every tree twice, and so on. Fractional
    /// factors keep a proportional prefix of the final copy.
    pub fn replicate(&self, factor: f64) -> Corpus {
        assert!(factor > 0.0, "replication factor must be positive");
        let want = ((self.trees.len() as f64) * factor).round() as usize;
        let want = want.max(1);
        let mut out = Corpus {
            interner: self.interner.clone(),
            trees: Vec::with_capacity(want),
        };
        for i in 0..want {
            out.trees.push(self.trees[i % self.trees.len()].clone());
        }
        out
    }

    /// A corpus over a contiguous slice of this corpus's trees,
    /// sharing the symbol table (symbol ids stay valid), so slices can
    /// be rendered, re-parsed or indexed independently.
    pub fn subcorpus(&self, range: std::ops::Range<usize>) -> Corpus {
        Corpus {
            interner: self.interner.clone(),
            trees: self.trees[range].to_vec(),
        }
    }

    /// Render the whole corpus in bracketed form (one tree per line).
    pub fn to_ptb_string(&self) -> String {
        let mut s = String::new();
        for t in &self.trees {
            s.push_str(&ptb::tree_to_string(t, &self.interner));
            s.push('\n');
        }
        s
    }
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Corpus({} trees, {} symbols)",
            self.trees.len(),
            self.interner.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::ptb::parse_str;

    const SRC: &str = "\
( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
( (S (NP-SBJ (DT the) (NN man)) (VP (VBD left))) )
";

    #[test]
    fn stats_counts() {
        let c = parse_str(SRC).unwrap();
        let s = c.stats();
        assert_eq!(s.trees, 2);
        assert_eq!(s.total_tokens, 5 + 3);
        assert_eq!(s.total_nodes, 9 + 6);
        assert_eq!(s.max_depth, 4);
        assert!(s.unique_tags >= 7);
        assert!(s.ascii_bytes > 0);
    }

    #[test]
    fn tag_histogram_is_sorted_and_deterministic() {
        let c = parse_str(SRC).unwrap();
        let h = c.tag_histogram();
        for w in h.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let top = c.top_tags(3);
        // DT, NN, NP-SBJ, S, VP, VBD all appear twice; ties sorted by name.
        assert_eq!(top[0].1, 2);
        assert_eq!(c.tag_histogram(), parse_str(SRC).unwrap().tag_histogram());
    }

    #[test]
    fn word_histogram() {
        let c = parse_str(SRC).unwrap();
        let h = c.word_histogram();
        let man = c.interner().get("man").unwrap();
        let freq = h.iter().find(|(s, _)| *s == man).unwrap().1;
        assert_eq!(freq, 2);
    }

    #[test]
    fn replicate_scales_tree_count() {
        let c = parse_str(SRC).unwrap();
        assert_eq!(c.replicate(0.5).trees().len(), 1);
        assert_eq!(c.replicate(1.0).trees().len(), 2);
        assert_eq!(c.replicate(2.0).trees().len(), 4);
        assert_eq!(c.replicate(4.0).trees().len(), 8);
        let doubled = c.replicate(2.0);
        assert_eq!(doubled.stats().total_nodes, 2 * c.stats().total_nodes);
        // Symbol ids stay stable across replication.
        assert_eq!(doubled.interner().get("man"), c.interner().get("man"));
    }

    #[test]
    fn ptb_round_trip_via_corpus() {
        let c = parse_str(SRC).unwrap();
        let re = parse_str(&c.to_ptb_string()).unwrap();
        assert_eq!(re.stats(), c.stats());
    }
}
