//! The LPath labeling scheme (paper §4, Definition 4.1) and the axis ⇔
//! label-comparison relations (paper Table 2).
//!
//! Each node is assigned a tuple `⟨left, right, depth, id, pid⟩`:
//!
//! * the *k*-th leaf (in document order, 1-based) has `left = k`,
//!   `right = k + 1` — consecutive leaves **share** a boundary, which is
//!   what makes adjacency (`immediate-following`) a label *equation*;
//! * a non-terminal spans from its first leaf descendant's `left` to its
//!   last leaf descendant's `right`;
//! * `depth` is 1 at the root element (the implicit document node would
//!   be 0); it disambiguates unary chains, whose nodes share intervals;
//! * `id` is a preorder identifier starting at 2 (`id = 1` is reserved
//!   for the implicit document node, matching Figure 5 where the root `S`
//!   has `id = 2, pid = 1`);
//! * `pid` is the parent's `id` (1 for the root element).
//!
//! The two properties the scheme is built on (paper §4):
//!
//! * **Containment** — `x` descends from `c` iff `x`'s interval is
//!   contained in `c`'s (with `depth` breaking unary-chain ties);
//! * **Adjacency** — `x` immediately follows `c` iff `x.left == c.right`,
//!   i.e. the leftmost leaf of `x` comes right after the rightmost leaf
//!   of `c` in every proper analysis containing both.

use crate::tree::{NodeId, Tree};

/// The id reserved for the implicit document node of every tree.
pub const DOC_ID: u32 = 1;

/// A node label `⟨left, right, depth, id, pid⟩` (Definition 4.1).
///
/// `name` and `value` from Figure 5 live on the tree/relation side; the
/// label proper is purely positional.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Label {
    /// Left leaf-interval boundary (first leaf's ordinal).
    pub left: u32,
    /// Right leaf-interval boundary (last leaf's ordinal + 1).
    pub right: u32,
    /// Node depth; the root element is 1.
    pub depth: u32,
    /// Unique identifier; the document node is [`DOC_ID`].
    pub id: u32,
    /// The parent's `id` ([`DOC_ID`] for the root element).
    pub pid: u32,
}

/// Label every node of `tree` in a single depth-first traversal
/// (paper §4: "the node labels can be constructed in a single depth-first
/// traversal"). The result is indexed by [`NodeId`].
pub fn label_tree(tree: &Tree) -> Vec<Label> {
    let n = tree.len();
    let mut labels = vec![
        Label {
            left: 0,
            right: 0,
            depth: 0,
            id: 0,
            pid: 0
        };
        n
    ];

    // Pass 1 (preorder, arena order): ids, depths, pids.
    // The arena is preorder by construction; parents precede children.
    // (Indexing `labels[..idx]` while writing `labels[idx]` forces the
    // index loop.)
    for idx in 0..n {
        let node = tree.node(NodeId(idx as u32));
        let (depth, pid) = match node.parent {
            None => (1, DOC_ID),
            Some(p) => {
                let pl = labels[p.index()];
                (pl.depth + 1, pl.id)
            }
        };
        labels[idx] = Label {
            left: 0,
            right: 0,
            depth,
            id: idx as u32 + 2, // preorder id; document node is 1
            pid,
        };
    }

    // Pass 2: leaf intervals. The k-th leaf spans [k, k+1).
    let mut next_left = 1u32;
    for (idx, label) in labels.iter_mut().enumerate() {
        if tree.node(NodeId(idx as u32)).is_leaf() {
            label.left = next_left;
            label.right = next_left + 1;
            next_left += 1;
        }
    }

    // Pass 3 (reverse arena order = bottom-up): propagate intervals to
    // non-terminals from first/last children.
    for idx in (0..n).rev() {
        let node = tree.node(NodeId(idx as u32));
        if !node.is_leaf() {
            let first = node.children[0];
            let last = *node.children.last().expect("non-leaf has children");
            labels[idx].left = labels[first.index()].left;
            labels[idx].right = labels[last.index()].right;
        }
    }

    labels
}

/// A navigation relation between two nodes of the *same* tree, as a pure
/// label predicate. This is the paper's Table 2.
///
/// `holds(x, c)` asks: is `x` reachable from context node `c` along this
/// axis? (`x` plays the row role "axis(x, c)" of Table 2.)
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // names are the documentation (Table 2 rows)
pub enum AxisRel {
    SelfNode,
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    ImmediateFollowing,
    Following,
    FollowingOrSelf,
    ImmediatePreceding,
    Preceding,
    PrecedingOrSelf,
    ImmediateFollowingSibling,
    FollowingSibling,
    FollowingSiblingOrSelf,
    ImmediatePrecedingSibling,
    PrecedingSibling,
    PrecedingSiblingOrSelf,
}

impl AxisRel {
    /// Evaluate the Table 2 label comparison: does `x` stand in this
    /// relation to context `c`?
    #[inline]
    pub fn holds(self, x: &Label, c: &Label) -> bool {
        use AxisRel::*;
        match self {
            SelfNode => x.id == c.id,
            Child => x.pid == c.id,
            Parent => x.id == c.pid,
            Descendant => x.left >= c.left && x.right <= c.right && x.depth > c.depth,
            DescendantOrSelf => x.left >= c.left && x.right <= c.right && x.depth >= c.depth,
            Ancestor => x.left <= c.left && x.right >= c.right && x.depth < c.depth,
            AncestorOrSelf => x.left <= c.left && x.right >= c.right && x.depth <= c.depth,
            ImmediateFollowing => x.left == c.right,
            Following => x.left >= c.right,
            FollowingOrSelf => x.left >= c.right || x.id == c.id,
            ImmediatePreceding => x.right == c.left,
            Preceding => x.right <= c.left,
            PrecedingOrSelf => x.right <= c.left || x.id == c.id,
            ImmediateFollowingSibling => x.pid == c.pid && x.left == c.right,
            FollowingSibling => x.pid == c.pid && x.left >= c.right,
            FollowingSiblingOrSelf => x.pid == c.pid && (x.left >= c.right || x.id == c.id),
            ImmediatePrecedingSibling => x.pid == c.pid && x.right == c.left,
            PrecedingSibling => x.pid == c.pid && x.right <= c.left,
            PrecedingSiblingOrSelf => x.pid == c.pid && (x.right <= c.left || x.id == c.id),
        }
    }

    /// The inverse relation: `r.holds(x, c) ⇔ r.inverse().holds(c, x)`.
    pub fn inverse(self) -> AxisRel {
        use AxisRel::*;
        match self {
            SelfNode => SelfNode,
            Child => Parent,
            Parent => Child,
            Descendant => Ancestor,
            Ancestor => Descendant,
            DescendantOrSelf => AncestorOrSelf,
            AncestorOrSelf => DescendantOrSelf,
            ImmediateFollowing => ImmediatePreceding,
            ImmediatePreceding => ImmediateFollowing,
            Following => Preceding,
            Preceding => Following,
            FollowingOrSelf => PrecedingOrSelf,
            PrecedingOrSelf => FollowingOrSelf,
            ImmediateFollowingSibling => ImmediatePrecedingSibling,
            ImmediatePrecedingSibling => ImmediateFollowingSibling,
            FollowingSibling => PrecedingSibling,
            PrecedingSibling => FollowingSibling,
            FollowingSiblingOrSelf => PrecedingSiblingOrSelf,
            PrecedingSiblingOrSelf => FollowingSiblingOrSelf,
        }
    }

    /// All nineteen relations (useful for exhaustive tests).
    pub const ALL: [AxisRel; 19] = {
        use AxisRel::*;
        [
            SelfNode,
            Child,
            Descendant,
            DescendantOrSelf,
            Parent,
            Ancestor,
            AncestorOrSelf,
            ImmediateFollowing,
            Following,
            FollowingOrSelf,
            ImmediatePreceding,
            Preceding,
            PrecedingOrSelf,
            ImmediateFollowingSibling,
            FollowingSibling,
            FollowingSiblingOrSelf,
            ImmediatePrecedingSibling,
            PrecedingSibling,
            PrecedingSiblingOrSelf,
        ]
    };
}

/// Left edge alignment (`^`): `x`'s span starts at the scope's left edge.
#[inline]
pub fn left_aligned(x: &Label, scope: &Label) -> bool {
    x.left == scope.left
}

/// Right edge alignment (`$`): `x`'s span ends at the scope's right edge.
#[inline]
pub fn right_aligned(x: &Label, scope: &Label) -> bool {
    x.right == scope.right
}

/// Subtree scoping: `x` lies within the subtree of `scope`
/// (descendant-or-self containment).
#[inline]
pub fn in_scope(x: &Label, scope: &Label) -> bool {
    x.left >= scope.left && x.right <= scope.right && x.depth >= scope.depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Interner;
    use crate::tree::Tree;

    /// Build the paper's Figure 1 tree:
    /// S( NP[I] VP( V[saw] NP( NP(Det[the] Adj[old] N[man])
    ///                         PP(Prep[with] NP(Det[a] N[dog])) ) ) N[today] )
    pub(crate) fn figure1() -> (Tree, Interner) {
        let mut i = Interner::new();
        let lex = i.intern("@lex");
        let mut t = Tree::new(i.intern("S"));
        let root = t.root();
        macro_rules! kid {
            ($t:expr, $p:expr, $i:expr, $tag:literal) => {{
                let tag = $i.intern($tag);
                $t.add_child($p, tag)
            }};
            ($t:expr, $p:expr, $i:expr, $tag:literal, $w:literal) => {{
                let tag = $i.intern($tag);
                let w = $i.intern($w);
                let n = $t.add_child($p, tag);
                $t.set_attr(n, lex, w);
                n
            }};
        }
        kid!(t, root, i, "NP", "I");
        let vp = kid!(t, root, i, "VP");
        kid!(t, vp, i, "V", "saw");
        let np6 = kid!(t, vp, i, "NP");
        let np7 = kid!(t, np6, i, "NP");
        kid!(t, np7, i, "Det", "the");
        kid!(t, np7, i, "Adj", "old");
        kid!(t, np7, i, "N", "man");
        let pp = kid!(t, np6, i, "PP");
        kid!(t, pp, i, "Prep", "with");
        let np11 = kid!(t, pp, i, "NP");
        kid!(t, np11, i, "Det", "a");
        kid!(t, np11, i, "N", "dog");
        kid!(t, root, i, "N", "today");
        (t, i)
    }

    /// Figure 5 of the paper lists the first rows of the labeled relation
    /// for the Figure 1 tree. Reproduce them exactly.
    #[test]
    fn figure5_rows() {
        let (t, i) = figure1();
        let labels = label_tree(&t);
        let row = |idx: usize| {
            let l = labels[idx];
            (
                l.left,
                l.right,
                l.depth,
                l.id,
                l.pid,
                i.resolve(t.node(NodeId(idx as u32)).name).to_string(),
            )
        };
        // (left, right, depth, id, pid, name) — from Figure 5.
        assert_eq!(row(0), (1, 10, 1, 2, 1, "S".into()));
        assert_eq!(row(1), (1, 2, 2, 3, 2, "NP".into()));
        assert_eq!(row(2), (2, 9, 2, 4, 2, "VP".into()));
        assert_eq!(row(3), (2, 3, 3, 5, 4, "V".into()));
        assert_eq!(row(4), (3, 9, 3, 6, 4, "NP".into()));
        assert_eq!(row(5), (3, 6, 4, 7, 6, "NP".into()));
        assert_eq!(row(6), (3, 4, 5, 8, 7, "Det".into()));
    }

    /// Example 4.1 of the paper: S is an ancestor of NP₇; V immediately
    /// precedes NP₆.
    #[test]
    fn example_4_1() {
        let (t, _) = figure1();
        let labels = label_tree(&t);
        let s = labels[0];
        let v = labels[3];
        let np6 = labels[4];
        let np7 = labels[5];
        assert!(AxisRel::Ancestor.holds(&s, &np7));
        assert!(AxisRel::Descendant.holds(&np7, &s));
        assert!(AxisRel::ImmediatePreceding.holds(&v, &np6));
        assert!(AxisRel::ImmediateFollowing.holds(&np6, &v));
    }

    /// Intro example: V is immediately followed by NP₆, NP₇ and Det₈, and
    /// N(today) follows V but does not immediately follow it.
    #[test]
    fn immediate_following_matches_paper_prose() {
        let (t, i) = figure1();
        let labels = label_tree(&t);
        let v = labels[3];
        let followers: Vec<String> = t
            .preorder()
            .filter(|&id| AxisRel::ImmediateFollowing.holds(&labels[id.index()], &v))
            .map(|id| i.resolve(t.node(id).name).to_string())
            .collect();
        assert_eq!(followers, ["NP", "NP", "Det"]);
        let today = labels[t.len() - 1];
        assert!(AxisRel::Following.holds(&today, &v));
        assert!(!AxisRel::ImmediateFollowing.holds(&today, &v));
    }

    /// Every relation must agree with its structural definition computed
    /// directly from the tree, on every node pair of the Figure 1 tree.
    #[test]
    fn relations_agree_with_structural_definitions() {
        let (t, _) = figure1();
        let labels = label_tree(&t);
        let n = t.len();
        // Structural ground truth.
        let is_anc = |a: NodeId, d: NodeId| t.ancestors(d).any(|x| x == a);
        let first_leaf = |x: NodeId| {
            let mut c = x;
            while !t.node(c).is_leaf() {
                c = t.node(c).children[0];
            }
            c
        };
        let last_leaf = |x: NodeId| {
            let mut c = x;
            while !t.node(c).is_leaf() {
                c = *t.node(c).children.last().unwrap();
            }
            c
        };
        let leaf_pos: std::collections::HashMap<NodeId, u32> = t
            .leaves()
            .enumerate()
            .map(|(k, id)| (id, k as u32 + 1))
            .collect();
        for xi in 0..n {
            for ci in 0..n {
                let (x, c) = (NodeId(xi as u32), NodeId(ci as u32));
                let (lx, lc) = (&labels[xi], &labels[ci]);
                let same_parent =
                    t.node(x).parent.is_some() && t.node(x).parent == t.node(c).parent;
                // following: x's first leaf strictly after c's last leaf
                let follows = leaf_pos[&first_leaf(x)] > leaf_pos[&last_leaf(c)];
                let ifollows = leaf_pos[&first_leaf(x)] == leaf_pos[&last_leaf(c)] + 1;
                assert_eq!(AxisRel::Child.holds(lx, lc), t.node(x).parent == Some(c));
                assert_eq!(AxisRel::Parent.holds(lx, lc), t.node(c).parent == Some(x));
                assert_eq!(
                    AxisRel::Descendant.holds(lx, lc),
                    is_anc(c, x),
                    "desc {xi} {ci}"
                );
                assert_eq!(AxisRel::Ancestor.holds(lx, lc), is_anc(x, c));
                assert_eq!(AxisRel::Following.holds(lx, lc), follows);
                assert_eq!(AxisRel::ImmediateFollowing.holds(lx, lc), ifollows);
                assert_eq!(AxisRel::Preceding.holds(lx, lc), {
                    leaf_pos[&last_leaf(x)] < leaf_pos[&first_leaf(c)]
                });
                assert_eq!(
                    AxisRel::FollowingSibling.holds(lx, lc),
                    same_parent && follows
                );
                assert_eq!(
                    AxisRel::ImmediateFollowingSibling.holds(lx, lc),
                    same_parent && t.next_sibling(c) == Some(x)
                );
                assert_eq!(
                    AxisRel::ImmediatePrecedingSibling.holds(lx, lc),
                    same_parent && t.prev_sibling(c) == Some(x)
                );
                assert_eq!(AxisRel::SelfNode.holds(lx, lc), xi == ci);
            }
        }
    }

    #[test]
    fn inverse_is_involutive_and_correct() {
        let (t, _) = figure1();
        let labels = label_tree(&t);
        for r in AxisRel::ALL {
            assert_eq!(r.inverse().inverse(), r);
            for x in &labels {
                for c in &labels {
                    assert_eq!(r.holds(x, c), r.inverse().holds(c, x));
                }
            }
        }
    }

    /// Unary chains: nodes share intervals but differ in depth, so
    /// ancestor/descendant remain distinguishable (paper §4 discussion).
    #[test]
    fn unary_chains_disambiguated_by_depth() {
        let mut i = Interner::new();
        let mut t = Tree::new(i.intern("A"));
        let b = t.add_child(t.root(), i.intern("B"));
        let c = t.add_child(b, i.intern("C"));
        t.set_attr(c, i.intern("@lex"), i.intern("w"));
        let labels = label_tree(&t);
        let (la, lb, lc) = (labels[0], labels[1], labels[2]);
        assert_eq!((la.left, la.right), (lb.left, lb.right));
        assert_eq!((lb.left, lb.right), (lc.left, lc.right));
        assert!(AxisRel::Descendant.holds(&lc, &la));
        assert!(!AxisRel::Descendant.holds(&la, &lc));
        assert!(AxisRel::Ancestor.holds(&la, &lc));
        assert!(AxisRel::DescendantOrSelf.holds(&la, &la));
        assert!(!AxisRel::Descendant.holds(&la, &la));
    }

    #[test]
    fn alignment_helpers() {
        let (t, _) = figure1();
        let labels = label_tree(&t);
        let vp = labels[2]; // (2,9)
        let v = labels[3]; // (2,3)
        let np6 = labels[4]; // (3,9)
        assert!(left_aligned(&v, &vp));
        assert!(!left_aligned(&np6, &vp));
        assert!(right_aligned(&np6, &vp));
        assert!(!right_aligned(&v, &vp));
        assert!(in_scope(&np6, &vp));
        assert!(in_scope(&vp, &vp));
        assert!(!in_scope(&labels[0], &vp));
        // N(today) is outside VP's scope (the paper's Q5 example).
        let today = labels[t.len() - 1];
        assert!(!in_scope(&today, &vp));
    }
}
