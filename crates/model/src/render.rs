//! ASCII rendering of linguistic trees, for examples, the REPL and
//! debugging output.
//!
//! Two views:
//!
//! * [`render_tree`] — an indented outline with box-drawing connectors,
//!   one node per line, terminals showing their `@lex` word;
//! * [`render_brackets`] — the single-line bracketed form linguists
//!   read fluently (`(S (NP I) (VP ...))`).

use crate::symbols::Interner;
use crate::tree::{NodeId, Tree};

/// Render an indented outline of `tree`:
///
/// ```text
/// S
/// ├── NP "I"
/// ├── VP
/// │   ├── V "saw"
/// │   └── NP …
/// └── N "today"
/// ```
///
/// `highlight` nodes are marked with `*` (used by the REPL to show
/// query matches in context).
pub fn render_tree(tree: &Tree, interner: &Interner, highlight: &[NodeId]) -> String {
    let mut out = String::new();
    line(tree, interner, tree.root(), "", "", highlight, &mut out);
    out
}

fn line(
    tree: &Tree,
    interner: &Interner,
    id: NodeId,
    prefix: &str,
    child_prefix: &str,
    highlight: &[NodeId],
    out: &mut String,
) {
    let node = tree.node(id);
    out.push_str(prefix);
    out.push_str(interner.resolve(node.name));
    for &(aname, aval) in &node.attrs {
        let name = interner.resolve(aname);
        if name == "@lex" {
            out.push_str(" \"");
            out.push_str(interner.resolve(aval));
            out.push('"');
        } else {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            out.push_str(interner.resolve(aval));
            out.push('"');
        }
    }
    if highlight.contains(&id) {
        out.push_str("   *");
    }
    out.push('\n');
    let n = node.children.len();
    for (i, &c) in node.children.iter().enumerate() {
        let last = i + 1 == n;
        let connector = if last { "└── " } else { "├── " };
        let extend = if last { "    " } else { "│   " };
        line(
            tree,
            interner,
            c,
            &format!("{child_prefix}{connector}"),
            &format!("{child_prefix}{extend}"),
            highlight,
            out,
        );
    }
}

/// Render the single-line bracketed form: `(S (NP I) (VP (V saw)))`.
/// Terminals print as `(TAG word)`; non-lex attributes are omitted
/// (this is the linguist-facing view, not a serialization — use
/// [`crate::ptb`] or [`crate::xml`] for lossless output).
pub fn render_brackets(tree: &Tree, interner: &Interner) -> String {
    let mut out = String::new();
    brackets(tree, interner, tree.root(), &mut out);
    out
}

fn brackets(tree: &Tree, interner: &Interner, id: NodeId, out: &mut String) {
    let node = tree.node(id);
    out.push('(');
    out.push_str(interner.resolve(node.name));
    let lex = interner.get("@lex").and_then(|s| node.attr(s));
    if let Some(word) = lex {
        out.push(' ');
        out.push_str(interner.resolve(word));
    }
    for &c in &node.children {
        out.push(' ');
        brackets(tree, interner, c, out);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptb::parse_str;

    #[test]
    fn outline_shows_structure_and_words() {
        let c = parse_str("( (S (NP I) (VP (V saw) (NP it))) )").unwrap();
        let t = &c.trees()[0];
        let s = render_tree(t, c.interner(), &[]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "S");
        assert_eq!(lines[1], "├── NP \"I\"");
        assert_eq!(lines[2], "└── VP");
        assert_eq!(lines[3], "    ├── V \"saw\"");
        assert_eq!(lines[4], "    └── NP \"it\"");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn highlights_mark_matches() {
        let c = parse_str("( (S (NP I) (VP (V saw) (NP it))) )").unwrap();
        let t = &c.trees()[0];
        let s = render_tree(t, c.interner(), &[NodeId(4)]);
        assert!(s.contains("NP \"it\"   *"), "{s}");
        assert_eq!(s.matches('*').count(), 1);
    }

    #[test]
    fn brackets_round_trip_through_ptb() {
        let src = "( (S (NP I) (VP (V saw) (NP (Det a) (N dog)))) )";
        let c = parse_str(src).unwrap();
        let t = &c.trees()[0];
        let rendered = render_brackets(t, c.interner());
        assert_eq!(rendered, "(S (NP I) (VP (V saw) (NP (Det a) (N dog))))");
        // Reparse and compare structure.
        let back = parse_str(&format!("( {rendered} )")).unwrap();
        assert_eq!(back.trees()[0].len(), t.len());
    }
}
