//! Ordered labeled trees.
//!
//! A linguistic tree (paper §2.1) is an ordered tree whose non-terminals
//! are syntactic categories and whose terminals are lexical items. We
//! follow the paper's relational representation (Figure 5): terminals are
//! stored as `@lex` *attributes* of the lowest non-terminal (the
//! part-of-speech node), so every arena node is an element and attributes
//! hang off elements.
//!
//! Nodes live in an arena ([`Tree`]); [`NodeId`] is an index into it.
//! Trees are built root-first, so arena order is document (preorder)
//! order — an invariant the labeling pass and the Penn Treebank writer
//! rely on and the builder enforces.

use crate::symbols::Sym;

/// Index of a node within its [`Tree`] arena. The root is always
/// `NodeId(0)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single element node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Interned tag (`NP`, `VP`, `-NONE-`, …).
    pub name: Sym,
    /// Parent element; `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Attributes as `(name, value)` pairs; attribute names are interned
    /// *with* their leading `@` (e.g. `@lex`), matching the relational
    /// `name` column of the paper's Figure 5.
    pub attrs: Vec<(Sym, Sym)>,
}

impl Node {
    /// Look up an attribute value by interned attribute name.
    pub fn attr(&self, name: Sym) -> Option<Sym> {
        self.attrs.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Is this node a terminal (no children)?
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An ordered tree of [`Node`]s in an arena.
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Create a tree consisting of a single root element.
    pub fn new(root_name: Sym) -> Self {
        Tree {
            nodes: vec![Node {
                name: root_name,
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
            }],
        }
    }

    /// The root element.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a tree has at least its root.
    pub fn is_empty(&self) -> bool {
        false // a tree always has a root
    }

    /// Shared access to one node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to one node (name/attribute updates only; use
    /// [`crate::edit::TreeEditor`] for structural changes).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Append a child with tag `name` as the new last child of `parent`.
    ///
    /// # Panics
    /// Panics if children have already been added to a node that comes
    /// *after* `parent`'s subtree (which would break preorder arena
    /// order). In practice trees are built strictly root-first,
    /// depth-first, left-to-right.
    pub fn add_child(&mut self, parent: NodeId, name: Sym) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            parent: Some(parent),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attach (or overwrite) an attribute on `id`.
    pub fn set_attr(&mut self, id: NodeId, name: Sym, value: Sym) {
        let node = &mut self.nodes[id.index()];
        if let Some(slot) = node.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            node.attrs.push((name, value));
        }
    }

    /// All node ids in document (preorder) order.
    ///
    /// The arena is preorder by construction, so this is just `0..len`.
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of leaf elements (terminals) in document order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.preorder().filter(move |&id| self.node(id).is_leaf())
    }

    /// Number of terminal (leaf) nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of `id`, with the root at depth 1 (paper Definition 4.1,
    /// step 5).
    pub fn depth(&self, id: NodeId) -> u32 {
        let mut d = 1;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum node depth in the tree.
    pub fn max_depth(&self) -> u32 {
        // Computed in one pass by accumulating depths top-down; arena
        // preorder guarantees parents precede children.
        let mut depths = vec![0u32; self.nodes.len()];
        let mut max = 1;
        depths[0] = 1;
        for id in 1..self.nodes.len() {
            let p = self.nodes[id].parent.expect("non-root has parent");
            let d = depths[p.index()] + 1;
            depths[id] = d;
            max = max.max(d);
        }
        max
    }

    /// Iterator over ancestors of `id`, nearest first (excludes `id`).
    pub fn ancestors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.node(id).parent;
        std::iter::from_fn(move || {
            let r = cur?;
            cur = self.node(r).parent;
            Some(r)
        })
    }

    /// Ids in the subtree rooted at `id` (including `id`), document order.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // push children reversed so they pop in document order
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The next sibling of `id`, if any.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        let p = self.node(id).parent?;
        let sibs = &self.node(p).children;
        let pos = sibs.iter().position(|&s| s == id)?;
        sibs.get(pos + 1).copied()
    }

    /// The previous sibling of `id`, if any.
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        let p = self.node(id).parent?;
        let sibs = &self.node(p).children;
        let pos = sibs.iter().position(|&s| s == id)?;
        pos.checked_sub(1).map(|i| sibs[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Interner;

    fn toy() -> (Tree, Interner) {
        // S(NP(a) VP(V(b) NP(c)))
        let mut i = Interner::new();
        let (s, np, vp, v) = (i.intern("S"), i.intern("NP"), i.intern("VP"), i.intern("V"));
        let lex = i.intern("@lex");
        let (a, b, c) = (i.intern("a"), i.intern("b"), i.intern("c"));
        let mut t = Tree::new(s);
        let n_np = t.add_child(t.root(), np);
        t.set_attr(n_np, lex, a);
        let n_vp = t.add_child(t.root(), vp);
        let n_v = t.add_child(n_vp, v);
        t.set_attr(n_v, lex, b);
        let n_np2 = t.add_child(n_vp, np);
        t.set_attr(n_np2, lex, c);
        (t, i)
    }

    #[test]
    fn construction_is_preorder() {
        let (t, i) = toy();
        let names: Vec<&str> = t.preorder().map(|id| i.resolve(t.node(id).name)).collect();
        assert_eq!(names, ["S", "NP", "VP", "V", "NP"]);
    }

    #[test]
    fn leaves_and_depths() {
        let (t, _) = toy();
        let leaves: Vec<NodeId> = t.leaves().collect();
        assert_eq!(leaves, [NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.depth(t.root()), 1);
        assert_eq!(t.depth(NodeId(3)), 3);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn attr_lookup() {
        let (t, i) = toy();
        let lex = i.get("@lex").unwrap();
        assert_eq!(t.node(NodeId(1)).attr(lex), i.get("a"));
        assert_eq!(t.node(NodeId(0)).attr(lex), None);
    }

    #[test]
    fn sibling_navigation() {
        let (t, _) = toy();
        assert_eq!(t.next_sibling(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.prev_sibling(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.next_sibling(NodeId(2)), None);
        assert_eq!(t.prev_sibling(NodeId(1)), None);
        assert_eq!(t.next_sibling(NodeId(0)), None);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (t, _) = toy();
        let anc: Vec<NodeId> = t.ancestors(NodeId(3)).collect();
        assert_eq!(anc, [NodeId(2), NodeId(0)]);
    }

    #[test]
    fn descendants_or_self_in_document_order() {
        let (t, _) = toy();
        let d = t.descendants_or_self(NodeId(2));
        assert_eq!(d, [NodeId(2), NodeId(3), NodeId(4)]);
        let all = t.descendants_or_self(t.root());
        assert_eq!(all.len(), t.len());
    }
}
