//! Error type for the model crate.

use std::fmt;

/// Errors produced while building or parsing trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Malformed Penn Treebank input: unbalanced parentheses, empty node, …
    Ptb {
        /// Byte offset in the source.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Malformed XML input: mismatched tags, text content, bad entity, …
    Xml {
        /// Byte offset in the source.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A tree exceeded a structural limit (e.g. more than `u32::MAX` leaves).
    Limit(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Ptb { offset, message } => {
                write!(f, "treebank parse error at byte {offset}: {message}")
            }
            ModelError::Xml { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            ModelError::Limit(m) => write!(f, "structural limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}
