//! XML reader and writer for linguistic trees.
//!
//! The paper's premise is that "XML, a standard ordered tree model, and
//! XPath, its associated language, are natural choices for linguistic
//! data and queries" (§1); Figure 1's tree is an XML document whose
//! terminals hang off part-of-speech elements as `@lex` attributes.
//! This module serializes a [`Corpus`] to exactly that shape and parses
//! it back:
//!
//! ```xml
//! <treebank>
//!   <S>
//!     <NP lex="I"/>
//!     <VP>
//!       <V lex="saw"/>
//!       ...
//!     </VP>
//!   </S>
//! </treebank>
//! ```
//!
//! Penn Treebank tags are not always legal XML names (`-NONE-` starts
//! with `-`, `PRP$` contains `$`, `.` is punctuation). Such tags are
//! written as `<n tag="PRP$">` with the reserved element name `n`; the
//! reader maps them back. The five standard XML entities plus decimal
//! and hexadecimal character references are supported in both
//! directions, so the mapping corpus → XML → corpus is lossless (see
//! the round-trip tests and the workspace property suite).
//!
//! The parser accepts the subset of XML this writer emits plus the
//! usual benign extras: an XML declaration, comments, and arbitrary
//! inter-element whitespace. Text content is rejected — in this data
//! model words are attributes, not text nodes — as are processing
//! instructions, DOCTYPE, namespaces and CDATA.

use crate::corpus::Corpus;
use crate::error::ModelError;
use crate::symbols::Interner;
use crate::tree::{NodeId, Tree};

/// The reserved element name used for tags that are not legal XML names.
const ESCAPE_ELEM: &str = "n";
/// The attribute carrying the real tag on an escape element.
const ESCAPE_ATTR: &str = "tag";
/// The root element wrapping a multi-tree corpus.
const ROOT_ELEM: &str = "treebank";

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

/// Is `tag` usable directly as an XML element name?
///
/// We accept the ASCII core of the XML `Name` production: letters and
/// `_` to start, then letters, digits, `-`, `_`, `.`. The reserved
/// escape element name is excluded so `<n>` never collides with a
/// genuine tag `n`.
pub fn is_xml_name(tag: &str) -> bool {
    let mut bytes = tag.bytes();
    let Some(first) = bytes.next() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    if tag == ESCAPE_ELEM || tag.eq_ignore_ascii_case("xml") {
        return false;
    }
    bytes.all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Escape text for use inside an attribute value (double-quoted).
fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c if (c as u32) < 0x20 => {
                // Control characters are not legal XML chars; use
                // character references so round-trips stay lossless.
                out.push_str(&format!("&#{};", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialize one tree, indented by `indent` levels (two spaces each).
pub fn write_tree(tree: &Tree, interner: &Interner, indent: usize, out: &mut String) {
    write_elem(tree, interner, tree.root(), indent, out);
}

fn write_elem(tree: &Tree, interner: &Interner, id: NodeId, depth: usize, out: &mut String) {
    let node = tree.node(id);
    let tag = interner.resolve(node.name);
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    let escaped_tag = !is_xml_name(tag);
    if escaped_tag {
        out.push_str(ESCAPE_ELEM);
        out.push(' ');
        out.push_str(ESCAPE_ATTR);
        out.push_str("=\"");
        escape_into(out, tag);
        out.push('"');
    } else {
        out.push_str(tag);
    }
    for &(aname, aval) in &node.attrs {
        let aname = interner.resolve(aname);
        // Attribute names are interned with their leading `@`.
        let bare = aname.strip_prefix('@').unwrap_or(aname);
        out.push(' ');
        out.push_str(bare);
        out.push_str("=\"");
        escape_into(out, interner.resolve(aval));
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push_str(">\n");
    for &c in &node.children {
        write_elem(tree, interner, c, depth + 1, out);
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str("</");
    if escaped_tag {
        out.push_str(ESCAPE_ELEM);
    } else {
        out.push_str(tag);
    }
    out.push_str(">\n");
}

/// Serialize a whole corpus as one XML document (a `<treebank>` root
/// with one child element per tree).
pub fn to_string(corpus: &Corpus) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<treebank>\n");
    for tree in corpus.trees() {
        write_tree(tree, corpus.interner(), 1, &mut out);
    }
    out.push_str("</treebank>\n");
    out
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

/// Parse an XML document into a fresh corpus.
///
/// A `<treebank>` root contributes one tree per child element; any
/// other root element is a single tree.
pub fn parse_str(src: &str) -> Result<Corpus, ModelError> {
    let mut corpus = Corpus::new();
    parse_into(src, &mut corpus)?;
    Ok(corpus)
}

/// Parse an XML document, appending its trees to `corpus`. Returns the
/// number of trees appended.
pub fn parse_into(src: &str, corpus: &mut Corpus) -> Result<usize, ModelError> {
    let mut p = XmlParser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("content after the document element"));
    }
    let trees: Vec<RawElem> = if root.tag == ROOT_ELEM && root.attrs.is_empty() {
        root.children
    } else {
        vec![root]
    };
    let count = trees.len();
    for raw in trees {
        let tree = raw.into_tree(corpus.interner_mut())?;
        corpus.add_tree(tree);
    }
    Ok(count)
}

/// A parsed element before arena conversion.
struct RawElem {
    /// Decoded tag (escape elements already unwrapped).
    tag: String,
    /// `(name-without-@, value)` pairs.
    attrs: Vec<(String, String)>,
    children: Vec<RawElem>,
}

impl RawElem {
    fn into_tree(self, interner: &mut Interner) -> Result<Tree, ModelError> {
        let root_name = interner.intern(&self.tag);
        let mut tree = Tree::new(root_name);
        let root = tree.root();
        attach_attrs(&mut tree, interner, root, &self.attrs);
        for child in self.children {
            child.attach(&mut tree, interner, root)?;
        }
        Ok(tree)
    }

    fn attach(
        self,
        tree: &mut Tree,
        interner: &mut Interner,
        parent: NodeId,
    ) -> Result<(), ModelError> {
        let name = interner.intern(&self.tag);
        let id = tree.add_child(parent, name);
        attach_attrs(tree, interner, id, &self.attrs);
        for child in self.children {
            child.attach(tree, interner, id)?;
        }
        Ok(())
    }
}

fn attach_attrs(tree: &mut Tree, interner: &mut Interner, id: NodeId, attrs: &[(String, String)]) {
    for (name, value) in attrs {
        let full = format!("@{name}");
        let aname = interner.intern(&full);
        let aval = interner.intern(value);
        tree.set_attr(id, aname, aval);
    }
}

struct XmlParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl XmlParser<'_> {
    fn err(&self, message: impl Into<String>) -> ModelError {
        ModelError::Xml {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, the XML declaration and comments.
    fn skip_misc(&mut self) -> Result<(), ModelError> {
        loop {
            self.skip_ws();
            if self.src[self.pos..].starts_with(b"<?") {
                match find(self.src, self.pos, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated XML declaration")),
                }
            } else if self.src[self.pos..].starts_with(b"<!--") {
                match find(self.src, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Parse one element (recursive).
    fn element(&mut self) -> Result<RawElem, ModelError> {
        let offset = self.pos;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return finish_elem(name, attrs, Vec::new(), offset);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b) if name_start(b) => {
                    let aname = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute '{aname}'")));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.quoted()?;
                    if attrs.iter().any(|(n, _)| *n == aname) {
                        return Err(self.err(format!("duplicate attribute '{aname}'")));
                    }
                    attrs.push((aname, value));
                }
                Some(b) => {
                    return Err(self.err(format!("unexpected character '{}' in tag", b as char)))
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content: child elements, comments and whitespace only.
        let mut children = Vec::new();
        loop {
            self.skip_ws();
            if self.src[self.pos..].starts_with(b"<!--") {
                match find(self.src, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.src[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return finish_elem(name, attrs, children, offset);
            }
            match self.peek() {
                Some(b'<') => children.push(self.element()?),
                Some(_) => {
                    return Err(self.err("text content is not allowed (words are @lex attributes)"))
                }
                None => return Err(self.err(format!("unterminated element <{name}>"))),
            }
        }
    }

    /// An XML name token.
    fn name(&mut self) -> Result<String, ModelError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if name_start(b) => self.pos += 1,
            _ => return Err(self.err("expected a name")),
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        {
            self.pos += 1;
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// A quoted attribute value, with entity decoding.
    fn quoted(&mut self) -> Result<String, ModelError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(b'&') => {
                    let c = self.entity()?;
                    out.push(c);
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    /// Decode one entity or character reference starting at `&`.
    fn entity(&mut self) -> Result<char, ModelError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let end = match find(self.src, self.pos, b";") {
            Some(e) if e - start <= 12 => e,
            _ => return Err(self.err("unterminated entity reference")),
        };
        let body = std::str::from_utf8(&self.src[self.pos..end])
            .map_err(|_| self.err("invalid UTF-8 in entity"))?;
        self.pos = end + 1;
        let c = match body {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point &{body};")))?
            }
            _ if body.starts_with('#') => {
                let code: u32 = body[1..]
                    .parse()
                    .map_err(|_| self.err(format!("bad character reference &{body};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point &{body};")))?
            }
            _ => return Err(self.err(format!("unknown entity &{body};"))),
        };
        Ok(c)
    }
}

fn name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| from + i)
}

/// Resolve the escape-element convention and build a [`RawElem`].
fn finish_elem(
    name: String,
    mut attrs: Vec<(String, String)>,
    children: Vec<RawElem>,
    offset: usize,
) -> Result<RawElem, ModelError> {
    let tag = if name == ESCAPE_ELEM {
        let idx = attrs
            .iter()
            .position(|(n, _)| n == ESCAPE_ATTR)
            .ok_or_else(|| ModelError::Xml {
                offset,
                message: format!("<{ESCAPE_ELEM}> element without a {ESCAPE_ATTR} attribute"),
            })?;
        attrs.remove(idx).1
    } else {
        name
    };
    if tag.is_empty() {
        return Err(ModelError::Xml {
            offset,
            message: "empty tag".into(),
        });
    }
    Ok(RawElem {
        tag,
        attrs,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptb;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn names(corpus: &Corpus, tid: usize) -> Vec<String> {
        let t = &corpus.trees()[tid];
        t.preorder()
            .map(|id| corpus.resolve(t.node(id).name).to_string())
            .collect()
    }

    fn lexes(corpus: &Corpus, tid: usize) -> Vec<String> {
        let t = &corpus.trees()[tid];
        let lex = corpus.interner().get("@lex");
        t.preorder()
            .filter_map(|id| lex.and_then(|s| t.node(id).attr(s)))
            .map(|v| corpus.resolve(v).to_string())
            .collect()
    }

    #[test]
    fn figure1_round_trips() {
        let corpus = ptb::parse_str(FIG1).unwrap();
        let xml = to_string(&corpus);
        assert!(xml.contains("<V lex=\"saw\"/>"), "{xml}");
        let back = parse_str(&xml).unwrap();
        assert_eq!(back.trees().len(), 1);
        assert_eq!(names(&corpus, 0), names(&back, 0));
        assert_eq!(lexes(&corpus, 0), lexes(&back, 0));
    }

    #[test]
    fn multi_tree_corpus_round_trips() {
        let corpus = ptb::parse_str(&format!("{FIG1}\n{FIG1}\n{FIG1}")).unwrap();
        let back = parse_str(&to_string(&corpus)).unwrap();
        assert_eq!(back.trees().len(), 3);
        for tid in 0..3 {
            assert_eq!(names(&corpus, tid), names(&back, tid));
        }
    }

    #[test]
    fn ugly_tags_are_escaped() {
        // `-NONE-`, `PRP$`, `.` and `,` are real Treebank tags but not
        // XML names.
        let corpus = ptb::parse_str("( (S (-NONE- x) (PRP$ my) (. .) (n word)) )").unwrap();
        let xml = to_string(&corpus);
        assert!(xml.contains("<n tag=\"-NONE-\" lex=\"x\"/>"), "{xml}");
        assert!(xml.contains("<n tag=\"PRP$\" lex=\"my\"/>"), "{xml}");
        assert!(xml.contains("<n tag=\".\" lex=\".\"/>"), "{xml}");
        // A genuine tag `n` collides with the escape element and is
        // escaped too.
        assert!(xml.contains("<n tag=\"n\" lex=\"word\"/>"), "{xml}");
        let back = parse_str(&xml).unwrap();
        assert_eq!(names(&corpus, 0), names(&back, 0));
        assert_eq!(lexes(&corpus, 0), lexes(&back, 0));
    }

    #[test]
    fn entities_round_trip() {
        let corpus = ptb::parse_str("( (S (A a&b) (B \"q\") (C <x>)) )").unwrap();
        let xml = to_string(&corpus);
        assert!(xml.contains("&amp;"), "{xml}");
        assert!(xml.contains("&quot;"), "{xml}");
        assert!(xml.contains("&lt;x&gt;"), "{xml}");
        let back = parse_str(&xml).unwrap();
        assert_eq!(lexes(&corpus, 0), lexes(&back, 0));
    }

    #[test]
    fn character_references_decode() {
        let c = parse_str("<S><A lex=\"&#65;&#x42;\"/></S>").unwrap();
        assert_eq!(lexes(&c, 0), ["AB"]);
    }

    #[test]
    fn declaration_and_comments_are_skipped() {
        let c = parse_str(
            "<?xml version=\"1.0\"?>\n<!-- a treebank -->\n\
             <S><!-- inner --><NP lex=\"I\"/></S>\n<!-- trailing -->",
        )
        .unwrap();
        assert_eq!(c.trees().len(), 1);
        assert_eq!(names(&c, 0), ["S", "NP"]);
    }

    #[test]
    fn single_root_without_treebank_wrapper() {
        let c = parse_str("<S><NP lex=\"I\"/></S>").unwrap();
        assert_eq!(c.trees().len(), 1);
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "<S>",
            "<S></T>",
            "<S><NP></S>",
            "<S x></S>",
            "<S x=></S>",
            "<S x=\"1></S>",
            "<S>text</S>",
            "<S x=\"a\" x=\"b\"/>",
            "<S lex=\"&bogus;\"/>",
            "<S lex=\"&#xZZ;\"/>",
            "<S/><S/>",
            "<n/>",
            "<?xml version=\"1.0\"?",
            "<!-- unterminated",
        ] {
            assert!(parse_str(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_str("<S>oops</S>").unwrap_err();
        let ModelError::Xml { offset, .. } = err else {
            panic!("expected xml error, got {err:?}");
        };
        assert_eq!(offset, 3);
    }

    #[test]
    fn empty_treebank_parses_to_zero_trees() {
        let c = parse_str("<treebank></treebank>").unwrap();
        assert_eq!(c.trees().len(), 0);
        let c = parse_str("<treebank/>").unwrap();
        assert_eq!(c.trees().len(), 0);
    }

    #[test]
    fn treebank_with_attributes_is_a_plain_tree() {
        // A root named `treebank` that carries attributes is data, not
        // the wrapper convention.
        let c = parse_str("<treebank lex=\"x\"/>").unwrap();
        assert_eq!(c.trees().len(), 1);
        assert_eq!(names(&c, 0), ["treebank"]);
    }

    #[test]
    fn control_characters_round_trip() {
        let mut corpus = Corpus::new();
        let tag = corpus.intern("S");
        let lex = corpus.intern("@lex");
        let val = corpus.intern("a\tb\nc");
        let mut t = Tree::new(tag);
        let root = t.root();
        t.set_attr(root, lex, val);
        corpus.add_tree(t);
        let xml = to_string(&corpus);
        assert!(xml.contains("&#9;"), "{xml}");
        let back = parse_str(&xml).unwrap();
        assert_eq!(lexes(&back, 0), ["a\tb\nc"]);
    }
}
