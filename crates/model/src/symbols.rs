//! String interning for tags, attribute names and lexical values.
//!
//! The relational engine stores every column as a `u32`; interning maps
//! the textual vocabulary of a treebank (tags such as `NP-SBJ`, attribute
//! names such as `@lex`, and word forms) onto dense symbol ids.

use std::collections::HashMap;
use std::fmt;

/// An interned string. `Sym(0)` is the first interned symbol; symbols are
/// dense and start at zero, so they can index side tables directly.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw id, for use as a relational column value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A bidirectional string ⇄ [`Sym`] table.
///
/// Interners are append-only: symbols are never invalidated. Cloning an
/// interner snapshots the table, which is how corpus replication
/// ([`crate::Corpus::replicate`]) keeps symbol ids stable.
#[derive(Clone, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned string without creating a new symbol.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("NP");
        let b = i.intern("VP");
        let a2 = i.intern("NP");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        for s in ["NP", "VP", "@lex", "-NONE-", "saw", ""] {
            let sym = i.intern(s);
            assert_eq!(i.resolve(sym), s);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("NP"), None);
        let sym = i.intern("NP");
        assert_eq!(i.get("NP"), Some(sym));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..10).map(|k| i.intern(&format!("t{k}"))).collect();
        for (k, sym) in syms.iter().enumerate() {
            assert_eq!(sym.0, k as u32);
        }
        let collected: Vec<(Sym, String)> = i.iter().map(|(s, t)| (s, t.to_string())).collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[3].1, "t3");
    }

    #[test]
    fn clone_preserves_ids() {
        let mut i = Interner::new();
        let a = i.intern("NP");
        let j = i.clone();
        assert_eq!(j.get("NP"), Some(a));
        assert_eq!(j.resolve(a), "NP");
    }
}
