//! Ordered-tree substrate for the LPath system.
//!
//! This crate implements the data model of Bird et al., *Designing and
//! Evaluating an XPath Dialect for Linguistic Queries* (ICDE 2006):
//!
//! * [`tree`] — ordered labeled trees whose leaves carry lexical items as
//!   `@lex` attributes (paper §2.1);
//! * [`label`] — the interval labeling scheme of Definition 4.1 and the
//!   axis ⇔ label-comparison relations of Table 2;
//! * [`ptb`] — Penn Treebank bracketed-format reader and writer;
//! * [`xml`] — XML reader and writer (the paper's Figure 1 shape, with
//!   words as `@lex` attributes);
//! * [`corpus`] — corpora of trees plus the statistics reported in the
//!   paper's Figure 6(a) and 6(b);
//! * [`generator`] — a deterministic synthetic treebank generator that
//!   stands in for the (license-restricted) WSJ and Switchboard corpora.
//!
//! All tag names, attribute names and lexical values are interned
//! ([`symbols`]) so that the relational layer can treat every column as a
//! `u32`.
//!
//! ```
//! use lpath_model::{label_tree, ptb::parse_str};
//!
//! let corpus = parse_str("( (S (NP (DT the) (NN dog)) (VP (VBD ran))) )").unwrap();
//! let tree = &corpus.trees()[0];
//! let labels = label_tree(tree);
//! // Definition 4.1: the root spans every leaf (1-based ordinals),
//! // ids are preorder.
//! let root = &labels[tree.root().index()];
//! assert_eq!((root.left, root.right), (1, 4));
//! assert_eq!(root.id, 2); // id 1 is the implicit document node
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod edit;
pub mod error;
pub mod generator;
pub mod label;
pub mod ptb;
pub mod render;
pub mod symbols;
pub mod tree;
pub mod xml;

pub use corpus::{Corpus, CorpusStats};
pub use edit::{ERef, EditError, TreeEditor};
pub use error::ModelError;
pub use generator::{generate, GenConfig, Profile};
pub use label::{label_tree, AxisRel, Label};
pub use symbols::{Interner, Sym};
pub use tree::{Node, NodeId, Tree};
