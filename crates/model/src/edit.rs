//! Tree editing with incremental label maintenance.
//!
//! The paper closes by pointing at *querying and updating treebanks*
//! (Lai & Bird's requirements survey, the paper's reference \[17\]) as
//! the next problem. This module supplies the update half for the
//! annotation-repair operations treebank curators actually perform:
//!
//! * [`TreeEditor::relabel`] — rename a constituent (`NP` → `NP-SBJ`);
//! * [`TreeEditor::wrap`] — introduce a bracket around a contiguous
//!   span of siblings (`Det Adj N` → `NP(Det Adj N)`);
//! * [`TreeEditor::splice_out`] — dissolve a bracket, promoting its
//!   children;
//! * [`TreeEditor::insert_terminal`] / [`TreeEditor::delete`] — token
//!   level repairs;
//! * attribute edits.
//!
//! [`Tree`] arenas are immutable-by-construction (strict preorder, which
//! the labeling pass exploits); the editor works on a free-form arena
//! and [`TreeEditor::finish`] rebuilds a normalized preorder tree.
//!
//! **Incremental labels.** Definition 4.1 assigns `id` by "a Skolem
//! function" — identifiers need only be unique, not preorder — so the
//! interval labels of Definition 4.1 can be *maintained* under edits
//! instead of recomputed. The three bracket-level operations preserve
//! the terminal sequence, and for them maintenance costs only the
//! affected subtree:
//!
//! * `relabel` — labels unchanged;
//! * `wrap` — one fresh label; wrapped subtrees get `depth + 1`;
//! * `splice_out` — promoted subtrees get `depth - 1`.
//!
//! Token-level edits shift every leaf interval to their right — a
//! dense interval scheme has an Ω(n) worst case there, the classic
//! trade-off for label-equation query processing — so
//! `insert_terminal`/`delete` invalidate the cached labels and
//! [`TreeEditor::labels`] relabels lazily. Equivalence of maintained
//! and recomputed labels (modulo the id bijection) is property-tested.

use crate::error::ModelError;
use crate::label::{label_tree, Label, DOC_ID};
use crate::symbols::Sym;
use crate::tree::{NodeId, Tree};

/// A handle to a node inside a [`TreeEditor`]. Stable across edits;
/// invalidated (and rejected at use) once the node is deleted.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ERef(usize);

#[derive(Clone, Debug)]
struct ENode {
    name: Sym,
    parent: Option<usize>,
    children: Vec<usize>,
    attrs: Vec<(Sym, Sym)>,
    alive: bool,
}

/// Errors from editing operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The handle refers to a deleted node.
    Dead(usize),
    /// The operation needs a non-root node.
    Root,
    /// A child range was empty or out of bounds.
    Range {
        /// How many children the node has.
        len: usize,
        /// Requested range start.
        lo: usize,
        /// Requested range end (exclusive).
        hi: usize,
    },
    /// Splicing out a terminal would delete a token.
    SpliceLeaf,
    /// A child position was out of bounds.
    Position {
        /// How many children the node has.
        len: usize,
        /// Requested position.
        pos: usize,
    },
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::Dead(i) => write!(f, "node handle {i} refers to a deleted node"),
            EditError::Root => write!(f, "operation not applicable to the root"),
            EditError::Range { len, lo, hi } => {
                write!(f, "child range {lo}..{hi} invalid for {len} children")
            }
            EditError::SpliceLeaf => write!(f, "cannot splice out a terminal"),
            EditError::Position { len, pos } => {
                write!(f, "child position {pos} invalid for {len} children")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// A mutable tree under edit, with incrementally maintained labels.
pub struct TreeEditor {
    nodes: Vec<ENode>,
    root: usize,
    /// Maintained labels, aligned with `nodes`; `None` after a
    /// terminal-sequence edit until the next [`TreeEditor::labels`].
    labels: Option<Vec<Label>>,
    /// Next fresh Skolem id for labels of inserted nodes.
    next_id: u32,
}

impl TreeEditor {
    /// Start editing a copy of `tree`.
    pub fn new(tree: &Tree) -> Self {
        let nodes: Vec<ENode> = tree
            .preorder()
            .map(|id| {
                let n = tree.node(id);
                ENode {
                    name: n.name,
                    parent: n.parent.map(NodeId::index),
                    children: n.children.iter().map(|c| c.index()).collect(),
                    attrs: n.attrs.clone(),
                    alive: true,
                }
            })
            .collect();
        let labels = label_tree(tree);
        let next_id = labels.iter().map(|l| l.id).max().unwrap_or(DOC_ID) + 1;
        TreeEditor {
            nodes,
            root: 0,
            labels: Some(labels),
            next_id,
        }
    }

    /// The root handle.
    pub fn root(&self) -> ERef {
        ERef(self.root)
    }

    /// The handle for an original tree node.
    pub fn node_ref(&self, id: NodeId) -> ERef {
        ERef(id.index())
    }

    fn check(&self, r: ERef) -> Result<usize, EditError> {
        if self.nodes.get(r.0).is_some_and(|n| n.alive) {
            Ok(r.0)
        } else {
            Err(EditError::Dead(r.0))
        }
    }

    /// Live children of a node.
    pub fn children(&self, r: ERef) -> Result<Vec<ERef>, EditError> {
        let i = self.check(r)?;
        Ok(self.nodes[i].children.iter().map(|&c| ERef(c)).collect())
    }

    /// A node's tag.
    pub fn name(&self, r: ERef) -> Result<Sym, EditError> {
        Ok(self.nodes[self.check(r)?].name)
    }

    /// Rename a constituent. Labels are untouched.
    pub fn relabel(&mut self, r: ERef, name: Sym) -> Result<(), EditError> {
        let i = self.check(r)?;
        self.nodes[i].name = name;
        Ok(())
    }

    /// Set (or overwrite) an attribute.
    pub fn set_attr(&mut self, r: ERef, name: Sym, value: Sym) -> Result<(), EditError> {
        let i = self.check(r)?;
        let node = &mut self.nodes[i];
        if let Some(slot) = node.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            node.attrs.push((name, value));
        }
        Ok(())
    }

    /// Wrap the children `lo..hi` of `parent` in a fresh node tagged
    /// `name`, returning its handle. The terminal sequence is
    /// preserved; labels are maintained in O(wrapped subtree).
    pub fn wrap(
        &mut self,
        parent: ERef,
        lo: usize,
        hi: usize,
        name: Sym,
    ) -> Result<ERef, EditError> {
        let p = self.check(parent)?;
        let len = self.nodes[p].children.len();
        if lo >= hi || hi > len {
            return Err(EditError::Range { len, lo, hi });
        }
        let wrapped: Vec<usize> = self.nodes[p].children[lo..hi].to_vec();
        let fresh = self.nodes.len();
        self.nodes.push(ENode {
            name,
            parent: Some(p),
            children: wrapped.clone(),
            attrs: Vec::new(),
            alive: true,
        });
        for &c in &wrapped {
            self.nodes[c].parent = Some(fresh);
        }
        self.nodes[p].children.splice(lo..hi, [fresh]);

        if let Some(labels) = &mut self.labels {
            let first = *wrapped.first().expect("non-empty range");
            let last = *wrapped.last().expect("non-empty range");
            let parent_label = labels[p];
            let fresh_label = Label {
                left: labels[first].left,
                right: labels[last].right,
                depth: parent_label.depth + 1,
                id: self.next_id,
                pid: parent_label.id,
            };
            self.next_id += 1;
            labels.push(fresh_label);
            debug_assert_eq!(labels.len(), self.nodes.len());
            // Wrapped subtrees sink one level; their roots re-parent.
            for &c in &wrapped {
                labels[c].pid = fresh_label.id;
            }
            let mut stack = wrapped;
            while let Some(n) = stack.pop() {
                labels[n].depth += 1;
                stack.extend(self.nodes[n].children.iter().copied());
            }
        }
        Ok(ERef(fresh))
    }

    /// Dissolve a bracket: replace `r` by its children in its parent's
    /// child list. The terminal sequence is preserved; labels are
    /// maintained in O(spliced subtree).
    pub fn splice_out(&mut self, r: ERef) -> Result<(), EditError> {
        let i = self.check(r)?;
        let Some(p) = self.nodes[i].parent else {
            return Err(EditError::Root);
        };
        if self.nodes[i].children.is_empty() {
            return Err(EditError::SpliceLeaf);
        }
        let promoted = std::mem::take(&mut self.nodes[i].children);
        for &c in &promoted {
            self.nodes[c].parent = Some(p);
        }
        let pos = self.nodes[p]
            .children
            .iter()
            .position(|&c| c == i)
            .expect("child listed under its parent");
        self.nodes[p]
            .children
            .splice(pos..=pos, promoted.iter().copied());
        self.nodes[i].alive = false;

        if let Some(labels) = &mut self.labels {
            let parent_id = labels[p].id;
            for &c in &promoted {
                labels[c].pid = parent_id;
            }
            let mut stack = promoted;
            while let Some(n) = stack.pop() {
                labels[n].depth -= 1;
                stack.extend(self.nodes[n].children.iter().copied());
            }
        }
        Ok(())
    }

    /// Insert a fresh terminal tagged `name` as child `pos` of
    /// `parent`. Shifts the terminal sequence: cached labels are
    /// invalidated (relabeled lazily on demand).
    pub fn insert_terminal(
        &mut self,
        parent: ERef,
        pos: usize,
        name: Sym,
    ) -> Result<ERef, EditError> {
        let p = self.check(parent)?;
        let len = self.nodes[p].children.len();
        if pos > len {
            return Err(EditError::Position { len, pos });
        }
        let fresh = self.nodes.len();
        self.nodes.push(ENode {
            name,
            parent: Some(p),
            children: Vec::new(),
            attrs: Vec::new(),
            alive: true,
        });
        self.nodes[p].children.insert(pos, fresh);
        self.labels = None; // terminal sequence changed
        Ok(ERef(fresh))
    }

    /// Delete the subtree rooted at `r`. Shifts the terminal sequence:
    /// cached labels are invalidated.
    pub fn delete(&mut self, r: ERef) -> Result<(), EditError> {
        let i = self.check(r)?;
        let Some(p) = self.nodes[i].parent else {
            return Err(EditError::Root);
        };
        self.nodes[p].children.retain(|&c| c != i);
        let mut stack = vec![i];
        while let Some(n) = stack.pop() {
            self.nodes[n].alive = false;
            stack.extend(self.nodes[n].children.iter().copied());
        }
        self.labels = None;
        Ok(())
    }

    /// The maintained label of a node (relabels the whole tree first if
    /// a terminal-sequence edit invalidated the cache).
    pub fn labels(&mut self) -> Vec<(ERef, Label)> {
        if self.labels.is_none() {
            // Rebuild from the normalized tree, then map back through
            // the preorder correspondence.
            let (tree, map) = self.build();
            let fresh = label_tree(&tree);
            let mut labels = vec![
                Label {
                    left: 0,
                    right: 0,
                    depth: 0,
                    id: 0,
                    pid: 0
                };
                self.nodes.len()
            ];
            for (editor_idx, tree_id) in map.iter().enumerate() {
                if let Some(tid) = tree_id {
                    labels[editor_idx] = fresh[tid.index()];
                }
            }
            self.next_id = fresh.iter().map(|l| l.id).max().unwrap_or(DOC_ID) + 1;
            self.labels = Some(labels);
        }
        let labels = self.labels.as_ref().expect("just rebuilt");
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| (ERef(i), labels[i]))
            .collect()
    }

    /// Rebuild a normalized preorder [`Tree`], plus the editor-index →
    /// tree-id correspondence (`None` for deleted nodes).
    fn build(&self) -> (Tree, Vec<Option<NodeId>>) {
        let mut tree = Tree::new(self.nodes[self.root].name);
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        map[self.root] = Some(tree.root());
        for &(n, v) in &self.nodes[self.root].attrs {
            tree.set_attr(tree.root(), n, v);
        }
        // Depth-first, children in order — the arena comes out preorder.
        let mut stack: Vec<usize> = self.nodes[self.root]
            .children
            .iter()
            .rev()
            .copied()
            .collect();
        while let Some(i) = stack.pop() {
            let parent_tree = map[self.nodes[i].parent.expect("non-root")]
                .expect("parents are built before children");
            let id = tree.add_child(parent_tree, self.nodes[i].name);
            for &(n, v) in &self.nodes[i].attrs {
                tree.set_attr(id, n, v);
            }
            map[i] = Some(id);
            stack.extend(self.nodes[i].children.iter().rev().copied());
        }
        (tree, map)
    }

    /// Finish editing: a normalized preorder [`Tree`] ready for
    /// labeling, loading and querying.
    pub fn finish(&self) -> Result<Tree, ModelError> {
        Ok(self.build().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptb::parse_str;
    use crate::Corpus;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn fig1() -> Corpus {
        parse_str(FIG1).unwrap()
    }

    /// Assert maintained labels equal freshly computed ones, modulo the
    /// id bijection (left/right/depth must match exactly; id/pid must
    /// be related by a single consistent renaming).
    fn assert_labels_consistent(ed: &mut TreeEditor) {
        let maintained = ed.labels();
        let tree = ed.finish().unwrap();
        let fresh = label_tree(&tree);
        let (_, map) = ed.build();
        let mut rename: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        rename.insert(DOC_ID, DOC_ID);
        assert_eq!(maintained.len(), tree.len());
        for (r, m) in &maintained {
            let tid = map[r.0].expect("live node maps");
            let f = fresh[tid.index()];
            assert_eq!((m.left, m.right, m.depth), (f.left, f.right, f.depth));
            let prev = rename.insert(m.id, f.id);
            assert!(prev.is_none_or(|p| p == f.id), "id renaming inconsistent");
        }
        for (r, m) in &maintained {
            let tid = map[r.0].expect("live node maps");
            let f = fresh[tid.index()];
            assert_eq!(rename[&m.pid], f.pid, "pid inconsistent for {r:?}");
        }
    }

    #[test]
    fn relabel_renames_without_touching_labels() {
        let mut c = fig1();
        let npsbj = c.intern("NP-SBJ");
        let mut ed = TreeEditor::new(&c.trees()[0]);
        let np_i = ed.node_ref(crate::NodeId(1));
        let before = ed.labels();
        ed.relabel(np_i, npsbj).unwrap();
        let after = ed.labels();
        assert_eq!(before, after);
        let tree = ed.finish().unwrap();
        assert_eq!(c.resolve(tree.node(crate::NodeId(1)).name), "NP-SBJ");
        assert_labels_consistent(&mut ed);
    }

    #[test]
    fn wrap_brackets_a_span() {
        let mut c = fig1();
        let x = c.intern("X");
        let mut ed = TreeEditor::new(&c.trees()[0]);
        // Wrap S's children 0..2 (NP, VP) under X: S(X(NP VP) N).
        let fresh = ed.wrap(ed.root(), 0, 2, x).unwrap();
        assert_eq!(ed.children(ed.root()).unwrap().len(), 2);
        assert_eq!(ed.children(fresh).unwrap().len(), 2);
        assert_labels_consistent(&mut ed);
        let tree = ed.finish().unwrap();
        // Structure: S → (X, N); X → (NP, VP).
        let root_kids = &tree.node(tree.root()).children;
        assert_eq!(root_kids.len(), 2);
        assert_eq!(c.resolve(tree.node(root_kids[0]).name), "X");
    }

    #[test]
    fn wrap_then_splice_is_identity() {
        let mut c = fig1();
        let x = c.intern("X");
        let original = c.trees()[0].clone();
        let mut ed = TreeEditor::new(&original);
        let fresh = ed.wrap(ed.root(), 1, 3, x).unwrap();
        ed.splice_out(fresh).unwrap();
        assert_labels_consistent(&mut ed);
        let back = ed.finish().unwrap();
        assert_eq!(back.len(), original.len());
        for id in original.preorder() {
            assert_eq!(original.node(id).name, back.node(id).name);
            assert_eq!(original.node(id).children, back.node(id).children);
        }
    }

    #[test]
    fn splice_out_promotes_children() {
        let c = fig1();
        let mut ed = TreeEditor::new(&c.trees()[0]);
        // VP is node 2; splicing promotes V and NP to S.
        let vp = ed.node_ref(crate::NodeId(2));
        ed.splice_out(vp).unwrap();
        assert_eq!(ed.children(ed.root()).unwrap().len(), 4);
        assert_labels_consistent(&mut ed);
        // The handle is dead now.
        assert_eq!(ed.splice_out(vp), Err(EditError::Dead(2)));
    }

    #[test]
    fn terminal_edits_relabel_lazily() {
        let mut c = fig1();
        let uh = c.intern("UH");
        let lex = c.intern("@lex");
        let oh = c.intern("oh");
        let mut ed = TreeEditor::new(&c.trees()[0]);
        let t = ed.insert_terminal(ed.root(), 0, uh).unwrap();
        ed.set_attr(t, lex, oh).unwrap();
        assert_labels_consistent(&mut ed);
        // The new terminal is the first leaf: left = 1.
        let labels = ed.labels();
        let l = labels.iter().find(|(r, _)| *r == t).unwrap().1;
        assert_eq!((l.left, l.right), (1, 2));
    }

    #[test]
    fn delete_removes_a_subtree() {
        let c = fig1();
        let mut ed = TreeEditor::new(&c.trees()[0]);
        // Delete the PP (preorder node 9, subtree of 5 nodes): the big
        // NP keeps only "the old man".
        let pp = ed.node_ref(crate::NodeId(9));
        ed.delete(pp).unwrap();
        assert_labels_consistent(&mut ed);
        let tree = ed.finish().unwrap();
        assert_eq!(tree.len(), c.trees()[0].len() - 5);
        // Deleted descendants are dead.
        assert!(ed
            .relabel(
                ed.node_ref(crate::NodeId(10)),
                c.interner().get("NP").unwrap()
            )
            .is_err());
    }

    #[test]
    fn edit_errors() {
        let mut c = fig1();
        let x = c.intern("X");
        let mut ed = TreeEditor::new(&c.trees()[0]);
        assert_eq!(ed.splice_out(ed.root()), Err(EditError::Root));
        assert_eq!(ed.delete(ed.root()), Err(EditError::Root));
        assert_eq!(
            ed.wrap(ed.root(), 2, 2, x),
            Err(EditError::Range {
                len: 3,
                lo: 2,
                hi: 2
            })
        );
        assert_eq!(
            ed.wrap(ed.root(), 0, 9, x),
            Err(EditError::Range {
                len: 3,
                lo: 0,
                hi: 9
            })
        );
        assert_eq!(
            ed.insert_terminal(ed.root(), 7, x),
            Err(EditError::Position { len: 3, pos: 7 })
        );
        // Splicing a terminal is refused.
        let np_i = ed.node_ref(crate::NodeId(1));
        assert_eq!(ed.splice_out(np_i), Err(EditError::SpliceLeaf));
    }

    #[test]
    fn edited_tree_queries_correctly() {
        // End to end: edit, rebuild, re-query. Wrap "the old man"'s
        // Det/Adj under a fresh DP and check a query sees it.
        let mut c = fig1();
        let dp = c.intern("DP");
        let mut ed = TreeEditor::new(&c.trees()[0]);
        // "the old man" is preorder node 5 (children Det, Adj, N).
        let np = ed.node_ref(crate::NodeId(5));
        ed.wrap(np, 0, 2, dp).unwrap();
        let tree = ed.finish().unwrap();
        let mut edited = Corpus::new();
        *edited.interner_mut() = c.interner().clone();
        edited.add_tree(tree);
        // Check the new bracket's span via labels directly (full engine
        // round-trips live in the workspace `tests/`).
        let t = &edited.trees()[0];
        let labels = label_tree(t);
        let dp_node = t
            .preorder()
            .find(|&n| edited.resolve(t.node(n).name) == "DP")
            .expect("DP exists");
        // DP spans "the old" = leaves 3..5.
        assert_eq!(
            (labels[dp_node.index()].left, labels[dp_node.index()].right),
            (3, 5)
        );
    }
}
