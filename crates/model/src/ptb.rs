//! Penn Treebank bracketed-format reader and writer.
//!
//! The Treebank distributes parsed sentences as s-expressions:
//!
//! ```text
//! ( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )
//! ```
//!
//! * `(TAG word)` is a terminal: an element `TAG` carrying `@lex = word`;
//! * `(TAG child…)` is a non-terminal;
//! * a top-level `( … )` wrapper with a single child and no tag (the
//!   Treebank convention) is unwrapped; a tagless wrapper with several
//!   children becomes a `TOP` node.
//!
//! Words may contain any characters except whitespace and parentheses
//! (the Treebank escapes brackets as `-LRB-` / `-RRB-` already).

use crate::corpus::Corpus;
use crate::error::ModelError;
use crate::symbols::Interner;
use crate::tree::{NodeId, Tree};

/// Parse a whole file of bracketed trees into a fresh corpus.
pub fn parse_str(src: &str) -> Result<Corpus, ModelError> {
    let mut corpus = Corpus::new();
    parse_into(src, &mut corpus)?;
    Ok(corpus)
}

/// Parse bracketed trees from `src`, appending them to `corpus`.
/// Returns the number of trees parsed.
pub fn parse_into(src: &str, corpus: &mut Corpus) -> Result<usize, ModelError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut count = 0;
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        let tree = p.tree(corpus.interner_mut())?;
        corpus.add_tree(tree);
        count += 1;
    }
    Ok(count)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

/// Transient s-expression used during parsing, converted to an arena
/// [`Tree`] only once the root shape (wrapper or not) is known.
enum SExpr {
    Node {
        tag: Option<String>,
        children: Vec<SExpr>,
    },
    Word(String),
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn err(&self, message: impl Into<String>) -> ModelError {
        ModelError::Ptb {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn atom(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_whitespace() || b == b'(' || b == b')' {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn sexpr(&mut self) -> Result<SExpr, ModelError> {
        self.skip_ws();
        if self.at_end() {
            return Err(self.err("unexpected end of input"));
        }
        if self.src[self.pos] != b'(' {
            let w = self.atom();
            if w.is_empty() {
                return Err(self.err("expected '(' or token"));
            }
            return Ok(SExpr::Word(w));
        }
        self.pos += 1; // consume '('
        self.skip_ws();
        // Optional tag.
        let tag = if !self.at_end() && self.src[self.pos] != b'(' && self.src[self.pos] != b')' {
            Some(self.atom())
        } else {
            None
        };
        let mut children = Vec::new();
        loop {
            self.skip_ws();
            if self.at_end() {
                return Err(self.err("unbalanced '(': missing ')'"));
            }
            if self.src[self.pos] == b')' {
                self.pos += 1;
                break;
            }
            children.push(self.sexpr()?);
        }
        Ok(SExpr::Node { tag, children })
    }

    fn tree(&mut self, interner: &mut Interner) -> Result<Tree, ModelError> {
        let start = self.pos;
        let mut top = self.sexpr()?;
        // Unwrap the conventional tagless `( (S …) )` wrapper.
        loop {
            match top {
                SExpr::Node {
                    tag: None,
                    mut children,
                } if children.len() == 1 => {
                    top = children.pop().expect("len checked");
                }
                _ => break,
            }
        }
        let (tag, children) = match top {
            SExpr::Node { tag, children } => (tag.unwrap_or_else(|| "TOP".into()), children),
            SExpr::Word(_) => {
                self.pos = start;
                return Err(self.err("bare word at top level"));
            }
        };
        if children.is_empty() {
            return Err(self.err("empty tree"));
        }
        let root_sym = interner.intern(&tag);
        let mut tree = Tree::new(root_sym);
        let root = tree.root();
        for child in children {
            attach(&mut tree, root, child, interner, self)?;
        }
        Ok(tree)
    }
}

fn attach(
    tree: &mut Tree,
    parent: NodeId,
    sexpr: SExpr,
    interner: &mut Interner,
    p: &Parser<'_>,
) -> Result<(), ModelError> {
    match sexpr {
        SExpr::Word(w) => {
            // A bare word directly under `parent` makes `parent` a
            // terminal: attach @lex to it. The Treebank shape `(TAG word)`
            // arrives here with `parent` being the TAG element.
            let lex = interner.intern("@lex");
            let val = interner.intern(&w);
            tree.set_attr(parent, lex, val);
            Ok(())
        }
        SExpr::Node { tag, children } => {
            let tag = tag.ok_or_else(|| p.err("inner node missing tag"))?;
            let sym = interner.intern(&tag);
            let node = tree.add_child(parent, sym);
            for c in children {
                attach(tree, node, c, interner, p)?;
            }
            Ok(())
        }
    }
}

/// Render a single tree in bracketed form. `pretty` adds line breaks and
/// two-space indentation; otherwise the output is single-line.
pub fn write_tree(tree: &Tree, interner: &Interner, out: &mut String, pretty: bool) {
    fn rec(
        tree: &Tree,
        interner: &Interner,
        id: NodeId,
        out: &mut String,
        pretty: bool,
        indent: usize,
    ) {
        let node = tree.node(id);
        if pretty && indent > 0 {
            out.push('\n');
            for _ in 0..indent {
                out.push_str("  ");
            }
        }
        out.push('(');
        out.push_str(interner.resolve(node.name));
        if let Some(lex) = interner.get("@lex").and_then(|a| node.attr(a)) {
            out.push(' ');
            out.push_str(interner.resolve(lex));
        }
        for &c in &node.children {
            if !pretty {
                out.push(' ');
            }
            rec(tree, interner, c, out, pretty, indent + 1);
        }
        out.push(')');
    }
    rec(tree, interner, tree.root(), out, pretty, 0);
}

/// Render a tree wrapped in the conventional `( … )` file wrapper.
pub fn tree_to_string(tree: &Tree, interner: &Interner) -> String {
    let mut s = String::new();
    s.push_str("( ");
    write_tree(tree, interner, &mut s, false);
    s.push_str(" )");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man))) (. .)) )";

    #[test]
    fn parse_single_tree() {
        let corpus = parse_str(SAMPLE).unwrap();
        assert_eq!(corpus.trees().len(), 1);
        let t = &corpus.trees()[0];
        assert_eq!(corpus.resolve(t.node(t.root()).name), "S");
        assert_eq!(t.leaf_count(), 5);
        let words: Vec<&str> = t
            .leaves()
            .map(|id| {
                let lex = corpus.interner().get("@lex").unwrap();
                corpus.resolve(t.node(id).attr(lex).unwrap())
            })
            .collect();
        assert_eq!(words, ["I", "saw", "the", "man", "."]);
    }

    #[test]
    fn parse_multiple_trees() {
        let src = format!("{SAMPLE}\n{SAMPLE}\n\n{SAMPLE}");
        let corpus = parse_str(&src).unwrap();
        assert_eq!(corpus.trees().len(), 3);
    }

    #[test]
    fn round_trip() {
        let corpus = parse_str(SAMPLE).unwrap();
        let rendered = tree_to_string(&corpus.trees()[0], corpus.interner());
        let reparsed = parse_str(&rendered).unwrap();
        assert_eq!(reparsed.trees().len(), 1);
        let re_rendered = tree_to_string(&reparsed.trees()[0], reparsed.interner());
        assert_eq!(rendered, re_rendered);
    }

    #[test]
    fn tagless_multi_child_wrapper_becomes_top() {
        let corpus = parse_str("( (NP (DT a)) (VP (VB go)) )").unwrap();
        let t = &corpus.trees()[0];
        assert_eq!(corpus.resolve(t.node(t.root()).name), "TOP");
        assert_eq!(t.node(t.root()).children.len(), 2);
    }

    #[test]
    fn nested_wrapper_unwraps() {
        let corpus = parse_str("( ( (S (X y)) ) )").unwrap();
        let t = &corpus.trees()[0];
        assert_eq!(corpus.resolve(t.node(t.root()).name), "S");
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse_str("( (S (NP"), Err(ModelError::Ptb { .. })));
        assert!(matches!(parse_str("word"), Err(ModelError::Ptb { .. })));
        assert!(matches!(parse_str("( () )"), Err(ModelError::Ptb { .. })));
    }

    #[test]
    fn pretty_output_parses_back() {
        let corpus = parse_str(SAMPLE).unwrap();
        let mut s = String::new();
        write_tree(&corpus.trees()[0], corpus.interner(), &mut s, true);
        assert!(s.contains('\n'));
        let reparsed = parse_str(&s).unwrap();
        assert_eq!(reparsed.trees()[0].len(), corpus.trees()[0].len());
    }

    #[test]
    fn special_tags_survive() {
        let src = "( (S (-NONE- *T*-1) (NP-SBJ-2 (NNP U.S.)) (, ,)) )";
        let corpus = parse_str(src).unwrap();
        let t = &corpus.trees()[0];
        let tags: Vec<&str> = t
            .preorder()
            .map(|id| corpus.resolve(t.node(id).name))
            .collect();
        assert_eq!(tags, ["S", "-NONE-", "NP-SBJ-2", "NNP", ","]);
    }
}
