//! Synthetic treebank generator.
//!
//! Treebank-3 (the corpus evaluated in the paper) is LDC-licensed and not
//! redistributable, so this module generates *synthetic* corpora whose
//! distributional shape matches the paper's Figure 6:
//!
//! * **WSJ profile** — newswire-like sentences: top tags ranked
//!   `NP > VP > NN > IN > …` (Figure 6(b), left), deep recursion
//!   (`NP → NP PP`, auxiliary `VP → MD VP` chains), `-NONE-` traces, and a
//!   long tail of function-tag decorated categories (`NP-TMP-3`, `PP-LOC`)
//!   approximating the 1,274 unique tags of Figure 6(a);
//! * **SWB profile** — conversational utterances: `-DFL-` disfluency
//!   markers as the most frequent tag (Figure 6(b), right), many short
//!   interjection turns, pronoun-heavy subjects.
//!
//! On top of the organic grammar, the generator *injects* the rare
//! constructs that queries Q10–Q23 of Figure 6(c) select (`rapprochement`,
//! `WHPP`, five-deep `NP` chains, `what building`, …) at rates scaled from
//! the paper's reported result sizes, so every evaluation query returns a
//! non-empty, proportionally sized answer at any corpus scale.
//!
//! Generation is deterministic for a given [`GenConfig`] (seeded
//! [`SmallRng`]); the same config always yields byte-identical corpora.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::corpus::Corpus;
use crate::symbols::Sym;
use crate::tree::{NodeId, Tree};

/// Which of the paper's two data sets to imitate.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Wall Street Journal: parsed newswire (Figure 6, left columns).
    Wsj,
    /// Switchboard: parsed telephone conversations (right columns).
    Swb,
}

impl Profile {
    /// Approximate sentence count of the full paper corpus; injection
    /// rates are scaled relative to this.
    pub fn paper_sentences(self) -> usize {
        match self {
            // ~1M words at ~20 words/sentence.
            Profile::Wsj => 49_000,
            // ~3.97M nodes of short utterances.
            Profile::Swb => 110_000,
        }
    }

    /// Display name used in harness tables.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Wsj => "WSJ",
            Profile::Swb => "SWB",
        }
    }
}

/// Configuration for [`generate`].
#[derive(Copy, Clone, Debug)]
pub struct GenConfig {
    /// Which corpus to imitate (WSJ or Switchboard).
    pub profile: Profile,
    /// Number of trees (sentences/utterances) to generate.
    pub sentences: usize,
    /// RNG seed; same config ⇒ identical corpus.
    pub seed: u64,
}

impl GenConfig {
    /// A config with the default seed.
    pub fn new(profile: Profile, sentences: usize) -> Self {
        GenConfig {
            profile,
            sentences,
            seed: 0x004C_5061_7468_u64, // "LPath"
        }
    }

    /// WSJ-profile config.
    pub fn wsj(sentences: usize) -> Self {
        Self::new(Profile::Wsj, sentences)
    }

    /// SWB-profile config.
    pub fn swb(sentences: usize) -> Self {
        Self::new(Profile::Swb, sentences)
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate a synthetic corpus according to `cfg`.
pub fn generate(cfg: &GenConfig) -> Corpus {
    let mut corpus = Corpus::new();
    let mut g = Gen::new(cfg, &mut corpus);
    let plan = g.injection_plan();
    for i in 0..cfg.sentences {
        let inj = plan.get(&i).map_or(&[][..], std::vec::Vec::as_slice);
        let tree = g.sentence(inj);
        g.corpus.add_tree(tree);
    }
    corpus
}

/// Rare constructs injected to realize the selective queries of
/// Figure 6(c). Each variant appends one constituent to a sentence.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Inj {
    /// `saw` as a verb — Q1.
    Saw,
    /// `(NP (NN part)) (PP (IN of) …) (VP …)` sibling triple — Q10.
    NpOfVp,
    /// `what` immediately followed by `building` — Q11.
    WhatBuilding,
    /// the word `rapprochement` — Q12.
    Rapprochement,
    /// the token `1929` — Q13.
    Year1929,
    /// an `ADVP-LOC-CLR` constituent — Q14.
    AdvpLocClr,
    /// a `WHPP` constituent — Q15.
    Whpp,
    /// `RRC` over `PP-TMP` — Q16.
    RrcPpTmp,
    /// `UCP-PRD` over `ADJP-PRD` — Q17.
    UcpPrd,
    /// five-deep `NP` unary chain — Q18.
    NpChain5,
    /// `PP` with immediate following sibling `SBAR` — Q20.
    PpSbar,
    /// `ADVP` with immediate following sibling `ADJP` — Q21.
    AdvpAdjp,
    /// three adjacent sibling `NP`s — Q22.
    NpNpNp,
    /// `VP` with immediate following sibling `VP` — Q23.
    VpVp,
}

impl Inj {
    const ALL: [Inj; 14] = [
        Inj::Saw,
        Inj::NpOfVp,
        Inj::WhatBuilding,
        Inj::Rapprochement,
        Inj::Year1929,
        Inj::AdvpLocClr,
        Inj::Whpp,
        Inj::RrcPpTmp,
        Inj::UcpPrd,
        Inj::NpChain5,
        Inj::PpSbar,
        Inj::AdvpAdjp,
        Inj::NpNpNp,
        Inj::VpVp,
    ];

    /// The paper's Figure 6(c) result size for the query this construct
    /// feeds, per profile. Zero means the construct never occurs there.
    fn paper_count(self, profile: Profile) -> usize {
        match profile {
            Profile::Wsj => match self {
                Inj::Saw => 153,
                Inj::NpOfVp => 192,
                Inj::WhatBuilding => 2,
                Inj::Rapprochement => 1,
                Inj::Year1929 => 14,
                Inj::AdvpLocClr => 60,
                Inj::Whpp => 87,
                Inj::RrcPpTmp => 8,
                Inj::UcpPrd => 17,
                Inj::NpChain5 => 254,
                Inj::PpSbar => 640,
                Inj::AdvpAdjp => 15,
                Inj::NpNpNp => 7,
                Inj::VpVp => 20,
            },
            Profile::Swb => match self {
                Inj::Saw => 339,
                Inj::NpOfVp => 31,
                Inj::WhatBuilding => 5,
                Inj::Rapprochement => 0,
                Inj::Year1929 => 0,
                Inj::AdvpLocClr => 0,
                Inj::Whpp => 20,
                Inj::RrcPpTmp => 3,
                Inj::UcpPrd => 4,
                Inj::NpChain5 => 12,
                Inj::PpSbar => 651,
                Inj::AdvpAdjp => 37,
                Inj::NpNpNp => 7,
                Inj::VpVp => 72,
            },
        }
    }
}

/// Grammatical word categories for vocabulary sampling.
#[derive(Copy, Clone, Debug)]
enum Cat {
    Noun,
    ProperNoun,
    Verb,
    PastVerb,
    Adj,
    Adv,
    Prep,
    Det,
    Pron,
    Modal,
    Interj,
    Number,
}

/// Maximum constituent nesting before the grammar is forced to bottom
/// out. The paper reports maximum depth 36 for both corpora; organic
/// recursion here stays below that and the cap makes it a hard bound.
const MAX_DEPTH: u32 = 30;

struct Gen<'a> {
    rng: SmallRng,
    corpus: &'a mut Corpus,
    profile: Profile,
    sentences: usize,
    lex: Sym,
}

impl<'a> Gen<'a> {
    fn new(cfg: &GenConfig, corpus: &'a mut Corpus) -> Self {
        let lex = corpus.intern("@lex");
        Gen {
            rng: SmallRng::seed_from_u64(cfg.seed),
            corpus,
            profile: cfg.profile,
            sentences: cfg.sentences,
            lex,
        }
    }

    // ---------------------------------------------------------------
    // Injection planning
    // ---------------------------------------------------------------

    /// Decide which sentences carry which rare constructs. Counts are the
    /// paper's Figure 6(c) sizes scaled by corpus size, with a floor of
    /// one occurrence so every query stays satisfiable at small scales.
    fn injection_plan(&mut self) -> std::collections::HashMap<usize, Vec<Inj>> {
        let mut plan: std::collections::HashMap<usize, Vec<Inj>> = std::collections::HashMap::new();
        if self.sentences == 0 {
            return plan;
        }
        let paper = self.profile.paper_sentences() as f64;
        for inj in Inj::ALL {
            let pc = inj.paper_count(self.profile);
            if pc == 0 {
                continue;
            }
            let scaled = (pc as f64 * self.sentences as f64 / paper).round() as usize;
            let count = scaled.max(1);
            for _ in 0..count {
                let idx = self.rng.gen_range(0..self.sentences);
                plan.entry(idx).or_default().push(inj);
            }
        }
        plan
    }

    // ---------------------------------------------------------------
    // Vocabulary
    // ---------------------------------------------------------------

    /// Log-uniform ("Zipf-ish") rank in `[0, n)`: heavily favours small
    /// ranks, giving a realistic head/tail word distribution.
    fn zipf(&mut self, n: usize) -> usize {
        let u: f64 = self.rng.gen();
        (((n as f64 + 1.0).powf(u)) as usize)
            .saturating_sub(1)
            .min(n - 1)
    }

    fn word(&mut self, cat: Cat) -> Sym {
        // A small head of real words per category, then a synthetic tail.
        const NOUNS: &[&str] = &[
            "company",
            "year",
            "market",
            "time",
            "share",
            "president",
            "group",
            "price",
            "week",
            "stock",
            "man",
            "dog",
            "government",
            "report",
        ];
        const PROPER: &[&str] = &[
            "Smith",
            "Johnson",
            "Tokyo",
            "Washington",
            "Ford",
            "IBM",
            "Texas",
        ];
        const VERBS: &[&str] = &[
            "make", "take", "buy", "sell", "see", "say", "go", "get", "give",
        ];
        const PAST: &[&str] = &[
            "said",
            "rose",
            "fell",
            "reported",
            "announced",
            "agreed",
            "made",
        ];
        const ADJS: &[&str] = &[
            "new", "old", "last", "big", "good", "federal", "major", "strong",
        ];
        const ADVS: &[&str] = &["also", "still", "even", "sharply", "really", "just"];
        const PREPS: &[&str] = &[
            "of", "in", "for", "on", "with", "at", "by", "from", "to", "about",
        ];
        const DETS: &[&str] = &["the", "a", "an", "this", "that", "its", "some"];
        const PRONS: &[&str] = &["it", "he", "they", "I", "we", "she", "you"];
        const MODALS: &[&str] = &["will", "would", "could", "may", "should"];
        const INTERJ: &[&str] = &["uh", "yeah", "well", "um", "right", "okay", "huh"];
        let (head, tail, tag): (&[&str], usize, &str) = match cat {
            Cat::Noun => (NOUNS, 1800, "n"),
            Cat::ProperNoun => (PROPER, 900, "pn"),
            Cat::Verb => (VERBS, 500, "v"),
            Cat::PastVerb => (PAST, 500, "vd"),
            Cat::Adj => (ADJS, 700, "adj"),
            Cat::Adv => (ADVS, 300, "adv"),
            Cat::Prep => (PREPS, 0, "p"),
            Cat::Det => (DETS, 0, "d"),
            Cat::Pron => (PRONS, 0, "pr"),
            Cat::Modal => (MODALS, 0, "m"),
            Cat::Interj => (INTERJ, 0, "i"),
            Cat::Number => (&[], 600, "num"),
        };
        let n = head.len() + tail;
        let r = self.zipf(n.max(1));
        if r < head.len() {
            self.corpus.intern(head[r])
        } else if matches!(cat, Cat::Number) {
            // Synthetic numerals; 1929 itself is injection-only.
            let v = 10 + (r as u64 % 89_000) * 7 % 99_990;
            self.corpus.intern(&format!("{v}"))
        } else {
            self.corpus.intern(&format!("{tag}{r}"))
        }
    }

    // ---------------------------------------------------------------
    // Tree-building helpers
    // ---------------------------------------------------------------

    fn leaf(&mut self, t: &mut Tree, parent: NodeId, tag: &str, cat: Cat) -> NodeId {
        let tag = self.corpus.intern(tag);
        let w = self.word(cat);
        let n = t.add_child(parent, tag);
        t.set_attr(n, self.lex, w);
        n
    }

    fn leaf_word(&mut self, t: &mut Tree, parent: NodeId, tag: &str, word: &str) -> NodeId {
        let tag = self.corpus.intern(tag);
        let w = self.corpus.intern(word);
        let n = t.add_child(parent, tag);
        t.set_attr(n, self.lex, w);
        n
    }

    fn inner(&mut self, t: &mut Tree, parent: NodeId, tag: &str) -> NodeId {
        let tag = self.corpus.intern(tag);
        t.add_child(parent, tag)
    }

    /// Occasionally decorate a phrase tag with a function suffix and
    /// index, producing the long tag tail of Figure 6(a). The WSJ has far
    /// more decorated tags than Switchboard.
    fn decorate(&mut self, base: &str) -> String {
        let (p_suffix, p_index) = match self.profile {
            Profile::Wsj => (0.08, 0.35),
            Profile::Swb => (0.04, 0.15),
        };
        if self.rng.gen_bool(p_suffix) {
            const SUFFIXES: &[&str] = &["TMP", "LOC", "MNR", "PRP", "ADV", "CLR", "PRD"];
            let s = SUFFIXES[self.rng.gen_range(0..SUFFIXES.len())];
            if self.rng.gen_bool(p_index) {
                let i = self.rng.gen_range(1..=40u32);
                format!("{base}-{s}-{i}")
            } else {
                format!("{base}-{s}")
            }
        } else {
            base.to_string()
        }
    }

    // ---------------------------------------------------------------
    // Sentence grammar
    // ---------------------------------------------------------------

    fn sentence(&mut self, injections: &[Inj]) -> Tree {
        let s = self.corpus.intern("S");
        let mut t = Tree::new(s);
        let root = t.root();
        match self.profile {
            Profile::Wsj => self.wsj_clause_body(&mut t, root, 1),
            Profile::Swb => self.swb_utterance_body(&mut t, root),
        }
        for &inj in injections {
            self.inject(&mut t, root, inj);
        }
        // Final punctuation, as in the Treebank.
        let punct = if self.profile == Profile::Swb && self.rng.gen_bool(0.1) {
            "?"
        } else {
            "."
        };
        self.leaf_word(&mut t, root, ".", punct);
        t
    }

    /// Children of an S node: optional adjunct, subject, predicate.
    fn wsj_clause_body(&mut self, t: &mut Tree, s: NodeId, depth: u32) {
        if depth < MAX_DEPTH && self.rng.gen_bool(0.18) {
            // Fronted adjunct.
            if self.rng.gen_bool(0.6) {
                self.pp(t, s, depth + 1);
            } else {
                let advp = self.inner(t, s, "ADVP");
                self.leaf(t, advp, "RB", Cat::Adv);
            }
            if self.rng.gen_bool(0.5) {
                self.leaf_word(t, s, ",", ",");
            }
        }
        self.np(t, s, depth + 1, true);
        self.vp(t, s, depth + 1);
    }

    /// A noun phrase. `subject` selects the `NP-SBJ` tag of Figure 6(b).
    fn np(&mut self, t: &mut Tree, parent: NodeId, depth: u32, subject: bool) -> NodeId {
        let tag = if subject {
            "NP-SBJ".to_string()
        } else {
            self.decorate("NP")
        };
        let np = self.inner(t, parent, &tag);
        let roll: f64 = self.rng.gen();
        let deep = depth >= MAX_DEPTH - 2;
        match () {
            // Trace (empty category): -NONE- ranks ninth in WSJ.
            () if roll < 0.13 => {
                self.leaf_word(t, np, "-NONE-", "*");
            }
            () if roll < 0.28 => {
                self.leaf(t, np, "DT", Cat::Det);
                self.leaf(t, np, "NN", Cat::Noun);
            }
            () if roll < 0.40 => {
                self.leaf(t, np, "DT", Cat::Det);
                self.leaf(t, np, "JJ", Cat::Adj);
                self.leaf(t, np, "NN", Cat::Noun);
            }
            () if roll < 0.55 => {
                self.leaf(t, np, "NNP", Cat::ProperNoun);
                if self.rng.gen_bool(0.60) {
                    self.leaf(t, np, "NNP", Cat::ProperNoun);
                    if self.rng.gen_bool(0.30) {
                        self.leaf(t, np, "NNP", Cat::ProperNoun);
                    }
                }
            }
            () if roll < 0.62 => {
                self.leaf(t, np, "PRP", Cat::Pron);
            }
            // NP → NP PP recursion (drives the NP count to #1 in WSJ).
            () if roll < 0.76 && !deep => {
                self.np(t, np, depth + 1, false);
                self.pp(t, np, depth + 1);
            }
            // NP → NP SBAR (relative clause).
            () if roll < 0.82 && !deep => {
                self.np(t, np, depth + 1, false);
                self.sbar(t, np, depth + 1);
            }
            () if roll < 0.87 => {
                self.leaf(t, np, "CD", Cat::Number);
                self.leaf(t, np, "NN", Cat::Noun);
            }
            () if roll < 0.91 => {
                self.leaf(t, np, "DT", Cat::Det);
                let adjp = self.inner(t, np, "ADJP");
                self.leaf(t, adjp, "JJ", Cat::Adj);
                self.leaf(t, np, "NN", Cat::Noun);
            }
            () if roll < 0.95 => {
                self.leaf(t, np, "NN", Cat::Noun);
                self.leaf(t, np, "NN", Cat::Noun);
            }
            () => {
                self.leaf(t, np, "NN", Cat::Noun);
            }
        }
        np
    }

    fn vp(&mut self, t: &mut Tree, parent: NodeId, depth: u32) -> NodeId {
        let vp = self.inner(t, parent, "VP");
        let roll: f64 = self.rng.gen();
        let deep = depth >= MAX_DEPTH - 2;
        match () {
            // VB NP — the //VB->NP workhorse (Q2).
            () if roll < 0.18 => {
                self.leaf(t, vp, "VB", Cat::Verb);
                self.np(t, vp, depth + 1, false);
            }
            // VB NP PP — VP-spanning triple, satisfies Q7's alignment.
            () if roll < 0.30 => {
                self.leaf(t, vp, "VB", Cat::Verb);
                self.np(t, vp, depth + 1, false);
                self.pp(t, vp, depth + 1);
            }
            // Auxiliary chain VP → MD VP (drives Q19's VP/VP/VP and
            // lifts VP to rank two of Figure 6(b)).
            () if roll < 0.60 && !deep => {
                self.leaf(t, vp, "MD", Cat::Modal);
                self.vp(t, vp, depth + 1);
            }
            () if roll < 0.68 => {
                self.leaf(t, vp, "VBD", Cat::PastVerb);
                self.np(t, vp, depth + 1, false);
            }
            // Clausal complement.
            () if roll < 0.80 && !deep => {
                self.leaf(t, vp, "VBD", Cat::PastVerb);
                self.sbar(t, vp, depth + 1);
            }
            // Small-clause complement (embedded S without SBAR).
            () if roll < 0.85 && !deep => {
                self.leaf(t, vp, "VB", Cat::Verb);
                let s = self.inner(t, vp, "S");
                self.wsj_clause_body(t, s, depth + 1);
            }
            () if roll < 0.90 => {
                self.leaf(t, vp, "VB", Cat::Verb);
                self.pp(t, vp, depth + 1);
            }
            () if roll < 0.94 => {
                self.leaf(t, vp, "VB", Cat::Verb);
                let adjp = self.inner(t, vp, "ADJP");
                self.leaf(t, adjp, "JJ", Cat::Adj);
            }
            () if roll < 0.97 => {
                self.leaf(t, vp, "VBD", Cat::PastVerb);
            }
            () => {
                self.leaf(t, vp, "VB", Cat::Verb);
            }
        }
        vp
    }

    fn pp(&mut self, t: &mut Tree, parent: NodeId, depth: u32) -> NodeId {
        let tag = self.decorate("PP");
        let pp = self.inner(t, parent, &tag);
        self.leaf(t, pp, "IN", Cat::Prep);
        if depth < MAX_DEPTH {
            self.np(t, pp, depth + 1, false);
        } else {
            self.leaf(t, pp, "NN", Cat::Noun);
        }
        pp
    }

    fn sbar(&mut self, t: &mut Tree, parent: NodeId, depth: u32) -> NodeId {
        let sbar = self.inner(t, parent, "SBAR");
        // Complementizer: overt, null, or wh-word. Null complementizers
        // contribute to the high -NONE- count of Figure 6(b).
        let roll: f64 = self.rng.gen();
        if roll < 0.55 {
            self.leaf(t, sbar, "IN", Cat::Prep);
        } else if roll < 0.80 {
            self.leaf_word(t, sbar, "-NONE-", "0");
        } else {
            let whnp = self.inner(t, sbar, "WHNP");
            self.leaf_word(t, whnp, "WDT", "which");
        }
        let s = self.inner(t, sbar, "S");
        if depth < MAX_DEPTH {
            match self.profile {
                Profile::Wsj => self.wsj_clause_body(t, s, depth + 1),
                Profile::Swb => {
                    self.np(t, s, depth + 1, true);
                    self.vp(t, s, depth + 1);
                }
            }
        } else {
            self.leaf(t, s, "NN", Cat::Noun);
        }
        sbar
    }

    /// Switchboard utterances: short, pronoun-heavy, riddled with
    /// `-DFL-` disfluency markers and interjections.
    fn swb_utterance_body(&mut self, t: &mut Tree, root: NodeId) {
        // Leading disfluency and/or interjection. `-DFL-` is the most
        // frequent Switchboard tag (Figure 6(b)): roughly 1.7 markers
        // per utterance once starts, restarts and ends are counted.
        if self.rng.gen_bool(0.72) {
            self.leaf_word(t, root, "-DFL-", "E_S");
        }
        if self.rng.gen_bool(0.40) {
            let intj = self.inner(t, root, "INTJ");
            self.leaf(t, intj, "UH", Cat::Interj);
            if self.rng.gen_bool(0.35) {
                self.leaf_word(t, root, "-DFL-", "N_S");
            }
            if self.rng.gen_bool(0.5) {
                self.leaf_word(t, root, ",", ",");
            }
        }
        if self.rng.gen_bool(0.25) {
            // Fragment turn: interjection only.
            if self.rng.gen_bool(0.60) {
                self.leaf_word(t, root, "-DFL-", "N_S");
            }
            return;
        }
        // Main clause, often with a restart marker before the subject.
        if self.rng.gen_bool(0.22) {
            self.leaf_word(t, root, "-DFL-", "N_S");
        }
        let sbj = self.inner(t, root, "NP-SBJ");
        if self.rng.gen_bool(0.78) {
            self.leaf(t, sbj, "PRP", Cat::Pron);
        } else {
            self.leaf(t, sbj, "DT", Cat::Det);
            self.leaf(t, sbj, "NN", Cat::Noun);
        }
        if self.rng.gen_bool(0.30) {
            let advp = self.inner(t, root, "ADVP");
            self.leaf(t, advp, "RB", Cat::Adv);
        }
        self.swb_vp(t, root, 2);
        if self.rng.gen_bool(0.65) {
            self.leaf_word(t, root, "-DFL-", "E_S");
        }
        if self.rng.gen_bool(0.45) {
            self.leaf_word(t, root, ",", ",");
        }
    }

    fn swb_vp(&mut self, t: &mut Tree, parent: NodeId, depth: u32) -> NodeId {
        let vp = self.inner(t, parent, "VP");
        let roll: f64 = self.rng.gen();
        let deep = depth >= MAX_DEPTH - 2;
        match () {
            () if roll < 0.28 => {
                self.leaf(t, vp, "VBP", Cat::Verb);
                let np = self.inner(t, vp, "NP");
                if self.rng.gen_bool(0.6) {
                    self.leaf(t, np, "PRP", Cat::Pron);
                } else {
                    self.leaf(t, np, "DT", Cat::Det);
                    self.leaf(t, np, "NN", Cat::Noun);
                }
            }
            // Auxiliary chains are very frequent in speech ("I do n't
            // think I would have …") — VP is tag #2 in SWB.
            () if roll < 0.55 && !deep => {
                self.leaf(t, vp, "MD", Cat::Modal);
                if self.rng.gen_bool(0.25) {
                    self.leaf(t, vp, "RB", Cat::Adv);
                }
                self.swb_vp(t, vp, depth + 1);
            }
            () if roll < 0.70 && !deep => {
                self.leaf(t, vp, "VBP", Cat::Verb);
                let sbar = self.inner(t, vp, "SBAR");
                let s = self.inner(t, sbar, "S");
                let sbj = self.inner(t, s, "NP-SBJ");
                self.leaf(t, sbj, "PRP", Cat::Pron);
                self.swb_vp(t, s, depth + 2);
            }
            () if roll < 0.80 => {
                self.leaf(t, vp, "VB", Cat::Verb);
                self.pp(t, vp, depth + 1);
            }
            () if roll < 0.88 => {
                self.leaf(t, vp, "VB", Cat::Verb);
                let np = self.inner(t, vp, "NP");
                self.leaf(t, np, "NN", Cat::Noun);
            }
            () => {
                self.leaf(t, vp, "VBD", Cat::PastVerb);
            }
        }
        vp
    }

    // ---------------------------------------------------------------
    // Rare-construct injection (appended as extra constituents of the
    // root, preserving the arena's preorder invariant).
    // ---------------------------------------------------------------

    fn inject(&mut self, t: &mut Tree, root: NodeId, inj: Inj) {
        match inj {
            Inj::Saw => {
                let vp = self.inner(t, root, "VP");
                self.leaf_word(t, vp, "VBD", "saw");
                let np = self.inner(t, vp, "NP");
                self.leaf_word(t, np, "DT", "the");
                self.leaf(t, np, "NN", Cat::Noun);
            }
            Inj::NpOfVp => {
                let np = self.inner(t, root, "NP");
                self.leaf_word(t, np, "NN", "part");
                let pp = self.inner(t, root, "PP");
                self.leaf_word(t, pp, "IN", "of");
                let ppnp = self.inner(t, pp, "NP");
                self.leaf_word(t, ppnp, "DT", "the");
                self.leaf(t, ppnp, "NN", Cat::Noun);
                let vp = self.inner(t, root, "VP");
                self.leaf_word(t, vp, "VBD", "worked");
            }
            Inj::WhatBuilding => {
                let np = self.inner(t, root, "NP");
                self.leaf_word(t, np, "WP", "what");
                self.leaf_word(t, np, "NN", "building");
            }
            Inj::Rapprochement => {
                let np = self.inner(t, root, "NP");
                self.leaf_word(t, np, "DT", "the");
                self.leaf_word(t, np, "NN", "rapprochement");
            }
            Inj::Year1929 => {
                let np = self.inner(t, root, "NP");
                self.leaf_word(t, np, "CD", "1929");
            }
            Inj::AdvpLocClr => {
                let advp = self.inner(t, root, "ADVP-LOC-CLR");
                self.leaf_word(t, advp, "RB", "here");
            }
            Inj::Whpp => {
                let whpp = self.inner(t, root, "WHPP");
                self.leaf_word(t, whpp, "IN", "of");
                let whnp = self.inner(t, whpp, "WHNP");
                self.leaf_word(t, whnp, "WDT", "which");
            }
            Inj::RrcPpTmp => {
                let rrc = self.inner(t, root, "RRC");
                let pp = self.inner(t, rrc, "PP-TMP");
                self.leaf_word(t, pp, "IN", "during");
                let np = self.inner(t, pp, "NP");
                self.leaf(t, np, "NN", Cat::Noun);
            }
            Inj::UcpPrd => {
                let ucp = self.inner(t, root, "UCP-PRD");
                let adjp = self.inner(t, ucp, "ADJP-PRD");
                self.leaf(t, adjp, "JJ", Cat::Adj);
                self.leaf_word(t, ucp, "CC", "and");
                let np = self.inner(t, ucp, "NP");
                self.leaf(t, np, "NN", Cat::Noun);
            }
            Inj::NpChain5 => {
                let mut cur = root;
                for _ in 0..5 {
                    cur = self.inner(t, cur, "NP");
                }
                self.leaf(t, cur, "NN", Cat::Noun);
            }
            Inj::PpSbar => {
                let pp = self.inner(t, root, "PP");
                self.leaf_word(t, pp, "IN", "after");
                let ppnp = self.inner(t, pp, "NP");
                self.leaf(t, ppnp, "NN", Cat::Noun);
                let sbar = self.inner(t, root, "SBAR");
                self.leaf_word(t, sbar, "IN", "because");
                let s = self.inner(t, sbar, "S");
                let sbj = self.inner(t, s, "NP-SBJ");
                self.leaf(t, sbj, "PRP", Cat::Pron);
                let vp = self.inner(t, s, "VP");
                self.leaf(t, vp, "VBD", Cat::PastVerb);
            }
            Inj::AdvpAdjp => {
                let advp = self.inner(t, root, "ADVP");
                self.leaf(t, advp, "RB", Cat::Adv);
                let adjp = self.inner(t, root, "ADJP");
                self.leaf(t, adjp, "JJ", Cat::Adj);
            }
            Inj::NpNpNp => {
                for _ in 0..3 {
                    let np = self.inner(t, root, "NP");
                    self.leaf(t, np, "NN", Cat::Noun);
                }
            }
            Inj::VpVp => {
                for _ in 0..2 {
                    let vp = self.inner(t, root, "VP");
                    self.leaf(t, vp, "VB", Cat::Verb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_wsj() -> Corpus {
        generate(&GenConfig::wsj(400))
    }

    fn small_swb() -> Corpus {
        generate(&GenConfig::swb(400))
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&GenConfig::wsj(100));
        let b = generate(&GenConfig::wsj(100));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.to_ptb_string(), b.to_ptb_string());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::wsj(100));
        let b = generate(&GenConfig::wsj(100).with_seed(7));
        assert_ne!(a.to_ptb_string(), b.to_ptb_string());
    }

    #[test]
    fn sentence_count_respected() {
        for n in [1, 10, 250] {
            assert_eq!(generate(&GenConfig::wsj(n)).trees().len(), n);
            assert_eq!(generate(&GenConfig::swb(n)).trees().len(), n);
        }
    }

    #[test]
    fn wsj_tag_ranks_match_figure_6b() {
        let c = small_wsj();
        let top: Vec<String> = c.top_tags(10).into_iter().map(|(t, _)| t).collect();
        // NP must dominate; VP in the top three; the paper's head tags
        // all present in the top ten.
        assert_eq!(top[0], "NP", "top tags: {top:?}");
        assert!(top[..3].contains(&"VP".to_string()), "top tags: {top:?}");
        for want in ["NN", "IN", "S", "NP-SBJ"] {
            assert!(top.contains(&want.to_string()), "missing {want}: {top:?}");
        }
    }

    #[test]
    fn swb_most_frequent_tag_is_dfl() {
        let c = small_swb();
        let top = c.top_tags(10);
        assert_eq!(top[0].0, "-DFL-", "top tags: {top:?}");
        let names: Vec<&str> = top.iter().map(|(t, _)| t.as_str()).collect();
        assert!(names.contains(&"VP"));
        assert!(names.contains(&"PRP"));
    }

    #[test]
    fn rare_constructs_are_injected() {
        let c = small_wsj();
        let text = c.to_ptb_string();
        for needle in [
            "rapprochement",
            "1929",
            "ADVP-LOC-CLR",
            "WHPP",
            "RRC",
            "UCP-PRD",
            "(WP what) (NN building)",
            "saw",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn swb_skips_wsj_only_constructs() {
        let c = small_swb();
        let text = c.to_ptb_string();
        assert!(!text.contains("rapprochement"));
        assert!(!text.contains("ADVP-LOC-CLR"));
        assert!(text.contains("WHPP")); // 20 in paper SWB
        assert!(text.contains("saw"));
    }

    #[test]
    fn depth_is_bounded() {
        let c = generate(&GenConfig::wsj(800));
        assert!(c.stats().max_depth <= MAX_DEPTH + 6);
    }

    #[test]
    fn every_leaf_has_lex() {
        let c = small_wsj();
        let lex = c.interner().get("@lex").unwrap();
        for t in c.trees() {
            for id in t.leaves() {
                assert!(
                    t.node(id).attr(lex).is_some(),
                    "leaf without @lex: {:?}",
                    c.resolve(t.node(id).name)
                );
            }
        }
    }

    #[test]
    fn wsj_is_bigger_per_sentence_than_swb() {
        let w = small_wsj().stats();
        let s = small_swb().stats();
        let wn = w.total_nodes as f64 / w.trees as f64;
        let sn = s.total_nodes as f64 / s.trees as f64;
        assert!(wn > sn, "wsj {wn} vs swb {sn} nodes/tree");
    }

    #[test]
    fn injection_counts_scale() {
        // rapprochement: paper count 1 → floor of one occurrence even in
        // tiny corpora; 1929: 14 per 49k sentences → a handful at 10k.
        let c = generate(&GenConfig::wsj(2_000));
        let text = c.to_ptb_string();
        assert_eq!(text.matches("rapprochement").count(), 1);
        let big = generate(&GenConfig::wsj(5_000));
        let nines = big.to_ptb_string().matches("(CD 1929)").count();
        assert!((1..=6).contains(&nines), "got {nines}");
    }

    #[test]
    fn round_trips_through_ptb() {
        let c = generate(&GenConfig::wsj(50));
        let re = crate::ptb::parse_str(&c.to_ptb_string()).unwrap();
        assert_eq!(re.trees().len(), 50);
        assert_eq!(re.stats().total_nodes, c.stats().total_nodes);
        assert_eq!(re.stats().max_depth, c.stats().max_depth);
    }
}
