//! Naive reference semantics, straight from the paper's definitions.
//!
//! This module implements the *meaning* of LPath with no labels and no
//! indexes, as an independent oracle:
//!
//! * [`proper_analyses`] enumerates the proper analyses of a tree
//!   (paper §2.2.1, after Chomsky, the paper’s reference \[9\]): every sequence derivable from
//!   the root by replacing nodes with their children;
//! * [`immediately_follows`] is Definition 3.1 realized literally over
//!   those analyses;
//! * [`NaiveEvaluator`] evaluates full LPath queries in `O(n²)` per
//!   step using structural relations computed from parent pointers and
//!   leaf ordinals only.
//!
//! Differential tests pit this against the walker and the relational
//! engine; agreement of three implementations with very different
//! machinery is the correctness argument for the whole system.

use std::collections::HashSet;

use lpath_model::{Corpus, NodeId, Tree};
use lpath_syntax::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Step};

/// Enumerate all proper analyses of `tree`: sequences of nodes obtained
/// by repeatedly replacing a node with its children, starting from
/// `[root]` down to the terminal yield. Exponential in general — use on
/// small trees (tests, examples, Figure 3).
pub fn proper_analyses(tree: &Tree) -> Vec<Vec<NodeId>> {
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    let mut queue: Vec<Vec<NodeId>> = vec![vec![tree.root()]];
    seen.insert(queue[0].clone());
    let mut i = 0;
    while i < queue.len() {
        let analysis = queue[i].clone();
        i += 1;
        for (pos, &n) in analysis.iter().enumerate() {
            let children = &tree.node(n).children;
            if children.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(analysis.len() + children.len() - 1);
            next.extend_from_slice(&analysis[..pos]);
            next.extend_from_slice(children);
            next.extend_from_slice(&analysis[pos + 1..]);
            if seen.insert(next.clone()) {
                queue.push(next);
            }
        }
    }
    queue
}

/// Definition 3.1 via proper analyses: does `x` appear immediately
/// after `c` in some proper analysis?
pub fn immediately_follows(tree: &Tree, x: NodeId, c: NodeId) -> bool {
    proper_analyses(tree)
        .iter()
        .any(|a| a.windows(2).any(|w| w[0] == c && w[1] == x))
}

/// Does `x` appear (anywhere) after `c` in some proper analysis — the
/// `following` relation?
pub fn follows(tree: &Tree, x: NodeId, c: NodeId) -> bool {
    proper_analyses(tree).iter().any(|a| {
        let px = a.iter().position(|&n| n == x);
        let pc = a.iter().position(|&n| n == c);
        matches!((px, pc), (Some(px), Some(pc)) if px > pc)
    })
}

/// Structural facts about one tree, computed without interval labels.
struct Facts {
    /// 1-based ordinal of each leaf in terminal order; `0` for
    /// non-leaves.
    leaf_ord: Vec<u32>,
    first_leaf: Vec<NodeId>,
    last_leaf: Vec<NodeId>,
}

impl Facts {
    fn build(tree: &Tree) -> Facts {
        let n = tree.len();
        let mut leaf_ord = vec![0u32; n];
        for (k, leaf) in tree.leaves().enumerate() {
            leaf_ord[leaf.index()] = k as u32 + 1;
        }
        let mut first_leaf = vec![NodeId(0); n];
        let mut last_leaf = vec![NodeId(0); n];
        // Arena order puts parents before children, so compute leaves
        // bottom-up.
        for idx in (0..n).rev() {
            let id = NodeId(idx as u32);
            let node = tree.node(id);
            if node.children.is_empty() {
                first_leaf[idx] = id;
                last_leaf[idx] = id;
            } else {
                first_leaf[idx] = first_leaf[node.children[0].index()];
                last_leaf[idx] =
                    last_leaf[node.children.last().copied().expect("non-empty").index()];
            }
        }
        Facts {
            leaf_ord,
            first_leaf,
            last_leaf,
        }
    }

    fn fl(&self, x: NodeId) -> u32 {
        self.leaf_ord[self.first_leaf[x.index()].index()]
    }

    fn ll(&self, x: NodeId) -> u32 {
        self.leaf_ord[self.last_leaf[x.index()].index()]
    }
}

/// The quadratic reference evaluator.
pub struct NaiveEvaluator<'c> {
    corpus: &'c Corpus,
}

impl<'c> NaiveEvaluator<'c> {
    /// Wrap a corpus (no preprocessing — that is the point).
    pub fn new(corpus: &'c Corpus) -> Self {
        NaiveEvaluator { corpus }
    }

    /// Evaluate an absolute query over the corpus, like
    /// [`crate::Walker::eval`].
    pub fn eval(&self, query: &Path) -> Vec<(u32, NodeId)> {
        let mut out = Vec::new();
        for (tid, tree) in self.corpus.trees().iter().enumerate() {
            let facts = Facts::build(tree);
            let ev = TreeEval {
                tree,
                facts,
                corpus: self.corpus,
            };
            let start = if query.absolute {
                None // document context
            } else {
                Some(tree.root())
            };
            let mut scopes = Vec::new();
            for n in ev.path(
                start.map_or_else(|| vec![Ctx::Doc], |r| vec![Ctx::Node(r)]),
                query,
                &mut scopes,
            ) {
                out.push((tid as u32, n));
            }
        }
        out
    }

    /// Result count over the corpus.
    pub fn count(&self, query: &Path) -> usize {
        self.eval(query).len()
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Ctx {
    Doc,
    Node(NodeId),
}

struct TreeEval<'a> {
    tree: &'a Tree,
    facts: Facts,
    corpus: &'a Corpus,
}

impl TreeEval<'_> {
    /// Does `x` stand in `axis` relation to context `c`? Computed from
    /// parent pointers and leaf ordinals (no interval labels).
    fn axis_holds(&self, axis: Axis, x: NodeId, c: NodeId) -> bool {
        let f = &self.facts;
        let same_parent = || {
            self.tree.node(x).parent.is_some()
                && self.tree.node(x).parent == self.tree.node(c).parent
        };
        let is_ancestor = |a: NodeId, d: NodeId| self.tree.ancestors(d).any(|n| n == a);
        match axis {
            Axis::SelfAxis => x == c,
            Axis::Child => self.tree.node(x).parent == Some(c),
            Axis::Parent => self.tree.node(c).parent == Some(x),
            Axis::Descendant => is_ancestor(c, x),
            Axis::DescendantOrSelf => x == c || is_ancestor(c, x),
            Axis::Ancestor => is_ancestor(x, c),
            Axis::AncestorOrSelf => x == c || is_ancestor(x, c),
            Axis::Following => f.fl(x) > f.ll(c),
            Axis::FollowingOrSelf => x == c || f.fl(x) > f.ll(c),
            Axis::ImmediateFollowing => f.fl(x) == f.ll(c) + 1,
            Axis::Preceding => f.ll(x) < f.fl(c),
            Axis::PrecedingOrSelf => x == c || f.ll(x) < f.fl(c),
            Axis::ImmediatePreceding => f.ll(x) + 1 == f.fl(c),
            Axis::FollowingSibling => same_parent() && f.fl(x) > f.ll(c),
            Axis::FollowingSiblingOrSelf => same_parent() && (x == c || f.fl(x) > f.ll(c)),
            Axis::ImmediateFollowingSibling => same_parent() && f.fl(x) == f.ll(c) + 1,
            Axis::PrecedingSibling => same_parent() && f.ll(x) < f.fl(c),
            Axis::PrecedingSiblingOrSelf => same_parent() && (x == c || f.ll(x) < f.fl(c)),
            Axis::ImmediatePrecedingSibling => same_parent() && f.ll(x) + 1 == f.fl(c),
            Axis::Attribute => false,
        }
    }

    fn in_subtree(&self, x: NodeId, s: NodeId) -> bool {
        x == s || self.tree.ancestors(x).any(|n| n == s)
    }

    fn path(&self, mut ctxs: Vec<Ctx>, path: &Path, scopes: &mut Vec<NodeId>) -> Vec<NodeId> {
        // Attribute-final paths are resolved inside predicates; a main
        // path treats an attribute step as selecting its element.
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut first = true;
        let mut current: Vec<Ctx> = std::mem::take(&mut ctxs);
        for step in &path.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &c in &current {
                next.extend(self.step(c, step, scopes));
            }
            next.sort_unstable();
            next.dedup();
            current = next.into_iter().map(Ctx::Node).collect();
            first = false;
        }
        let _ = first;
        for c in &current {
            if let Ctx::Node(n) = c {
                nodes.push(*n);
            }
        }
        if let Some(inner) = &path.scope {
            let mut out = Vec::new();
            for n in nodes {
                scopes.push(n);
                out.extend(self.path(vec![Ctx::Node(n)], inner, scopes));
                scopes.pop();
            }
            out.sort_unstable();
            out.dedup();
            return out;
        }
        nodes
    }

    fn step(&self, c: Ctx, step: &Step, scopes: &mut Vec<NodeId>) -> Vec<NodeId> {
        if step.axis == Axis::Attribute {
            // An attribute step selects the element when used as a
            // navigation step; predicates handle value comparison.
            let Ctx::Node(e) = c else { return vec![] };
            let has = match &step.test {
                NodeTest::Any => !self.tree.node(e).attrs.is_empty(),
                NodeTest::Tag(t) => self
                    .corpus
                    .interner()
                    .get(&format!("@{t}"))
                    .is_some_and(|sym| self.tree.node(e).attr(sym).is_some()),
            };
            return if has { vec![e] } else { vec![] };
        }
        let mut cands: Vec<NodeId> = match c {
            Ctx::Doc => match step.axis {
                Axis::Child => vec![self.tree.root()],
                Axis::Descendant | Axis::DescendantOrSelf => self.tree.preorder().collect(),
                _ => vec![],
            },
            Ctx::Node(cn) => self
                .tree
                .preorder()
                .filter(|&x| self.axis_holds(step.axis, x, cn))
                .collect(),
        };
        if let NodeTest::Tag(t) = &step.test {
            let want = self.corpus.interner().get(t);
            cands.retain(|&x| want == Some(self.tree.node(x).name));
        }
        if let Some(&s) = scopes.last() {
            cands.retain(|&x| self.in_subtree(x, s));
        }
        if step.left_align || step.right_align {
            let s = scopes.last().copied().unwrap_or_else(|| self.tree.root());
            let f = &self.facts;
            cands.retain(|&x| {
                (!step.left_align || f.fl(x) == f.fl(s))
                    && (!step.right_align || f.ll(x) == f.ll(s))
            });
        }
        if crate::compile::is_reverse_axis(step.axis) {
            cands.reverse();
        }
        for pred in &step.predicates {
            let len = cands.len();
            let mut kept = Vec::with_capacity(len);
            for (i, &x) in cands.iter().enumerate() {
                if self.pred(x, pred, i + 1, len, scopes) {
                    kept.push(x);
                }
            }
            cands = kept;
        }
        cands
    }

    fn pred(
        &self,
        x: NodeId,
        pred: &Pred,
        pos: usize,
        len: usize,
        scopes: &mut Vec<NodeId>,
    ) -> bool {
        match pred {
            Pred::And(a, b) => {
                self.pred(x, a, pos, len, scopes) && self.pred(x, b, pos, len, scopes)
            }
            Pred::Or(a, b) => {
                self.pred(x, a, pos, len, scopes) || self.pred(x, b, pos, len, scopes)
            }
            Pred::Not(p) => !self.pred(x, p, pos, len, scopes),
            Pred::Position(op, rhs) => {
                let rhs = match rhs {
                    PosRhs::Const(n) => *n as usize,
                    PosRhs::Last => len,
                };
                match op {
                    CmpOp::Eq => pos == rhs,
                    CmpOp::Ne => pos != rhs,
                    CmpOp::Lt => pos < rhs,
                    CmpOp::Gt => pos > rhs,
                }
            }
            Pred::Exists(p) => !self.path(vec![Ctx::Node(x)], p, scopes).is_empty(),
            Pred::Cmp { path, op, value } => {
                self.string_values(x, path, scopes)
                    .iter()
                    .any(|actual| match op {
                        CmpOp::Eq => *actual == value.as_str(),
                        CmpOp::Ne => *actual != value.as_str(),
                        CmpOp::Lt => *actual < value.as_str(),
                        CmpOp::Gt => *actual > value.as_str(),
                    })
            }
            Pred::Count { path, op, value } => {
                // Attribute-final paths count matched attributes (one
                // per element/name pair, as in the walker); element
                // paths count distinct elements.
                let n = match self.split_attr_final(path) {
                    Some((last, head)) if last.predicates.is_empty() => {
                        let elems = self.path(vec![Ctx::Node(x)], &head, scopes);
                        elems
                            .into_iter()
                            .map(|e| self.matching_attrs(e, &last.test).len())
                            .sum::<usize>() as u32
                    }
                    _ => self.path(vec![Ctx::Node(x)], path, scopes).len() as u32,
                };
                cmp_u32(*op, n, *value)
            }
            Pred::StrCmp { func, path, arg } => self
                .string_values(x, path, scopes)
                .iter()
                .any(|actual| func.apply(actual, arg)),
            Pred::StrLen { path, op, value } => self
                .string_values(x, path, scopes)
                .iter()
                .any(|actual| cmp_u32(*op, actual.chars().count() as u32, *value)),
        }
    }

    /// Split an attribute-final, unscoped path into its final step and
    /// head path.
    fn split_attr_final(&self, path: &Path) -> Option<(Step, Path)> {
        let (last, head_steps) = path.steps.split_last()?;
        if last.axis != Axis::Attribute || path.scope.is_some() {
            return None;
        }
        Some((
            last.clone(),
            Path {
                absolute: false,
                steps: head_steps.to_vec(),
                scope: None,
            },
        ))
    }

    /// Attribute values of `e` whose name matches `test`.
    fn matching_attrs(&self, e: NodeId, test: &NodeTest) -> Vec<&str> {
        let node = self.tree.node(e);
        match test {
            NodeTest::Any => node
                .attrs
                .iter()
                .map(|&(_, v)| self.corpus.resolve(v))
                .collect(),
            NodeTest::Tag(t) => self
                .corpus
                .interner()
                .get(&format!("@{t}"))
                .and_then(|s| node.attr(s))
                .map(|v| self.corpus.resolve(v))
                .into_iter()
                .collect(),
        }
    }

    /// The string values selected by an attribute-final path from
    /// context `x` (empty for element-final paths: elements have no
    /// string value in this data model).
    fn string_values(&self, x: NodeId, path: &Path, scopes: &mut Vec<NodeId>) -> Vec<&str> {
        let Some((last, head)) = self.split_attr_final(path) else {
            return Vec::new();
        };
        let elems = self.path(vec![Ctx::Node(x)], &head, scopes);
        elems
            .into_iter()
            .flat_map(|e| self.matching_attrs(e, &last.test))
            .collect()
    }
}

fn cmp_u32(op: CmpOp, lhs: u32, rhs: u32) -> bool {
    match op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Lt => lhs < rhs,
        CmpOp::Gt => lhs > rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;
    use lpath_syntax::parse;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    #[test]
    fn proper_analyses_of_small_tree() {
        // S(A(a) B(b)) has analyses: [S], [A B], [a B], [A b], [a b].
        // (x and y are lexical attributes, not nodes.)
        let c = parse_str("( (S (A (a x)) (B (b y))) )").unwrap();
        let t = &c.trees()[0];
        let analyses = proper_analyses(t);
        assert_eq!(analyses.len(), 5);
        assert!(analyses.contains(&vec![t.root()]));
    }

    #[test]
    fn figure3_immediate_following() {
        // Paper §2.2.1: V is immediately followed by NP6, NP7 and Det8;
        // N(today) follows V but not immediately.
        let c = parse_str(FIG1).unwrap();
        let t = &c.trees()[0];
        let name_of = |n: NodeId| c.resolve(t.node(n).name).to_string();
        let v = t.preorder().find(|&n| name_of(n) == "V").expect("V exists");
        let followers: Vec<String> = t
            .preorder()
            .filter(|&x| immediately_follows(t, x, v))
            .map(name_of)
            .collect();
        assert_eq!(followers, ["NP", "NP", "Det"]);
        let today = NodeId((t.len() - 1) as u32);
        assert!(follows(t, today, v));
        assert!(!immediately_follows(t, today, v));
    }

    #[test]
    fn proper_analysis_adjacency_equals_leaf_adjacency() {
        // The paper's adjacency property: immediate following via
        // proper analyses coincides with the leaf-ordinal equation.
        let c = parse_str(FIG1).unwrap();
        let t = &c.trees()[0];
        let facts = Facts::build(t);
        for x in t.preorder() {
            for y in t.preorder() {
                let via_analyses = immediately_follows(t, x, y);
                let via_leaves = facts.fl(x) == facts.ll(y) + 1;
                assert_eq!(via_analyses, via_leaves, "{x:?} after {y:?}");
            }
        }
    }

    #[test]
    fn naive_matches_paper_examples() {
        let c = parse_str(FIG1).unwrap();
        let ev = NaiveEvaluator::new(&c);
        let count = |q: &str| ev.count(&parse(q).unwrap());
        assert_eq!(count("//S[//_[@lex=saw]]"), 1);
        assert_eq!(count("//V=>NP"), 1);
        assert_eq!(count("//V->NP"), 2);
        assert_eq!(count("//VP/V-->N"), 3);
        assert_eq!(count("//VP{/V-->N}"), 2);
        assert_eq!(count("//VP{/NP$}"), 1);
        assert_eq!(count("//VP{//NP$}"), 2);
        assert_eq!(count("//NP[not(//Det)]"), 1);
    }

    #[test]
    fn naive_agrees_with_walker_on_fixed_queries() {
        let c = parse_str(FIG1).unwrap();
        let naive = NaiveEvaluator::new(&c);
        let walker = crate::Walker::new(&c);
        for q in [
            "//NP",
            "//VP//NP",
            "//V->NP",
            "//V-->_",
            "//NP<--_",
            "//N<==Det",
            "//VP{//NP$}",
            "//^NP",
            "//N$",
            "//S[//NP/PP]",
            "//NP[//Det and //Adj]",
            "//NP[not(//JJ)]",
            "//_[@lex=saw]",
            "//_[@lex!=dog]",
            "//VP/_[last()]",
            "//V/following-sibling::_[position()=1]",
            "//V->*_",
            "//N<=*_",
        ] {
            let query = parse(q).unwrap();
            let mut a = naive.eval(&query);
            let mut b = walker.eval(&query);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "disagreement on {q}");
        }
    }
}
