//! A direct tree-walking LPath evaluator.
//!
//! The walker evaluates queries against in-memory trees using the
//! interval labels and [`AxisRel`](lpath_model::AxisRel) predicates — no relational storage.
//! It supports the *full* language (including the horizontal `-or-self`
//! closures and `position()`/`last()`, which the relational translation
//! rejects), and serves as the reference implementation the SQL engine
//! is differentially tested against.

use lpath_model::{label, label_tree, Corpus, Label, NodeId, Tree};
use lpath_relstore::wire;
use lpath_syntax::{Axis, CmpOp, NodeTest, Path, PosRhs, Pred, Step};

use crate::compile::{axis_rel, is_reverse_axis};

/// A point of evaluation inside one tree.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Point {
    /// The implicit document node (context of absolute paths).
    Doc,
    Elem(NodeId),
    /// An attribute of an element, by interned *full* name (`@lex`).
    Attr(NodeId, lpath_model::Sym),
}

impl Point {
    fn element(self) -> Option<NodeId> {
        match self {
            Point::Doc => None,
            Point::Elem(e) | Point::Attr(e, _) => Some(e),
        }
    }
}

/// A suspended [`Walker::eval_resume`] enumeration: the next tree to
/// evaluate plus any matches already found past the last emitted page.
/// Tree-granular (trees are cheap to evaluate individually), owned,
/// and valid only against the corpus it was produced over.
#[derive(Clone, Debug)]
pub struct WalkerCheckpoint {
    next_tree: usize,
    pending: Vec<(u32, NodeId)>,
}

impl WalkerCheckpoint {
    /// Serialize this checkpoint into `w` (the walker-strategy half of
    /// a wire token; see [`crate::QueryCheckpoint::encode_into`]).
    pub fn encode_into(&self, w: &mut wire::Writer) {
        w.usize(self.next_tree);
        w.usize(self.pending.len());
        for &(tid, node) in &self.pending {
            w.u32(tid);
            w.u32(node.0);
        }
    }

    /// Decode a checkpoint from untrusted bytes. `ntrees` bounds the
    /// scan position: a resume point past the corpus is clamped to
    /// "exhausted" rather than trusted.
    pub fn decode(
        r: &mut wire::Reader<'_>,
        ntrees: usize,
    ) -> Result<WalkerCheckpoint, wire::WireError> {
        let next_tree = r.usize()?.min(ntrees);
        let n = r.seq_len(8)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push((r.u32()?, NodeId(r.u32()?)));
        }
        Ok(WalkerCheckpoint { next_tree, pending })
    }
}

/// Tree-walking evaluator over a corpus. Labels every tree once at
/// construction (or borrows labels a caller computed once and keeps —
/// see [`Walker::with_labels`]).
pub struct Walker<'c> {
    corpus: &'c Corpus,
    labels: std::borrow::Cow<'c, [Vec<Label>]>,
}

impl<'c> Walker<'c> {
    /// Label every tree of `corpus` and keep the labels for axis tests.
    pub fn new(corpus: &'c Corpus) -> Self {
        let labels = corpus.trees().iter().map(label_tree).collect::<Vec<_>>();
        Walker {
            corpus,
            labels: std::borrow::Cow::Owned(labels),
        }
    }

    /// A walker over labels the caller computed (with
    /// [`label_tree`] per tree, in corpus order) and keeps alive —
    /// construction is then free, which matters to callers that make a
    /// walker per query over a long-lived corpus.
    pub fn with_labels(corpus: &'c Corpus, labels: &'c [Vec<Label>]) -> Self {
        debug_assert_eq!(corpus.trees().len(), labels.len());
        Walker {
            corpus,
            labels: std::borrow::Cow::Borrowed(labels),
        }
    }

    /// The corpus this walker evaluates over.
    pub fn corpus(&self) -> &'c Corpus {
        self.corpus
    }

    /// Evaluate an absolute query over the whole corpus. Results are
    /// `(tree index, node)` in document order, deduplicated; a final
    /// attribute step yields its owning element.
    pub fn eval(&self, query: &Path) -> Vec<(u32, NodeId)> {
        let mut out = Vec::new();
        for tid in 0..self.corpus.trees().len() {
            for node in self.eval_tree(tid, query) {
                out.push((tid as u32, node));
            }
        }
        out
    }

    /// Evaluate an absolute query against one tree.
    pub fn eval_tree(&self, tree_idx: usize, query: &Path) -> Vec<NodeId> {
        let ctx = TreeCtx {
            tree: &self.corpus.trees()[tree_idx],
            labels: &self.labels[tree_idx],
            corpus: self.corpus,
        };
        let start = if query.absolute {
            vec![Point::Doc]
        } else {
            vec![Point::Elem(ctx.tree.root())]
        };
        let mut scopes = Vec::new();
        let points = ctx.eval_path(start, query, &mut scopes);
        finish(points)
    }

    /// Evaluate a relative query from a specific context node.
    pub fn eval_from(&self, tree_idx: usize, context: NodeId, query: &Path) -> Vec<NodeId> {
        let ctx = TreeCtx {
            tree: &self.corpus.trees()[tree_idx],
            labels: &self.labels[tree_idx],
            corpus: self.corpus,
        };
        let start = if query.absolute {
            vec![Point::Doc]
        } else {
            vec![Point::Elem(context)]
        };
        let mut scopes = Vec::new();
        finish(ctx.eval_path(start, query, &mut scopes))
    }

    /// Result count over the corpus (the measure the paper reports).
    pub fn count(&self, query: &Path) -> usize {
        self.eval(query).len()
    }

    /// Does the query match anywhere in the corpus? Trees are checked
    /// in document order and the scan stops at the first tree with a
    /// match — the walker's early-exit mirror of the relational
    /// cursor's `exists`.
    pub fn exists(&self, query: &Path) -> bool {
        (0..self.corpus.trees().len()).any(|tid| !self.eval_tree(tid, query).is_empty())
    }

    /// The `[offset, offset + limit)` slice of [`Walker::eval`]'s
    /// document-ordered result, stopping the corpus scan as soon as
    /// enough matches have accumulated. Byte-identical to slicing the
    /// full enumeration.
    pub fn eval_limit(&self, query: &Path, offset: usize, limit: usize) -> Vec<(u32, NodeId)> {
        if limit == 0 {
            return Vec::new();
        }
        let (mut rows, _) = self.eval_resume(query, None, offset.saturating_add(limit));
        rows.split_off(offset.min(rows.len()))
    }

    /// Resume (or begin) a document-ordered enumeration: up to `limit`
    /// further matches after `checkpoint` (from the start when
    /// `None`), plus the checkpoint to continue from — `None` once the
    /// corpus is known exhausted. Concatenating the chunks of
    /// successive calls is byte-identical to [`Walker::eval`]; no tree
    /// is re-evaluated across calls. The walker-strategy mirror of
    /// [`crate::Engine::query_resume`].
    pub fn eval_resume(
        &self,
        query: &Path,
        checkpoint: Option<WalkerCheckpoint>,
        limit: usize,
    ) -> (Vec<(u32, NodeId)>, Option<WalkerCheckpoint>) {
        let (mut ready, mut next_tree) = match checkpoint {
            Some(c) => (c.pending, c.next_tree),
            None => (Vec::new(), 0),
        };
        let ntrees = self.corpus.trees().len();
        while next_tree < ntrees && ready.len() < limit {
            for node in self.eval_tree(next_tree, query) {
                ready.push((next_tree as u32, node));
            }
            next_tree += 1;
        }
        let out: Vec<(u32, NodeId)> = ready.drain(..limit.min(ready.len())).collect();
        let next = if next_tree >= ntrees && ready.is_empty() {
            None
        } else {
            Some(WalkerCheckpoint {
                next_tree,
                pending: ready,
            })
        };
        (out, next)
    }

    /// Evaluate in parallel over `threads` worker threads, partitioning
    /// the corpus by tree — trees are independent, so this is an
    /// embarrassingly parallel scan. Results are identical to
    /// [`Walker::eval`] (same order).
    ///
    /// This is a beyond-paper extension: the paper's engines are
    /// single-threaded (2005 hardware); the per-tree independence that
    /// makes this trivial is a property of the data model worth
    /// demonstrating. The ablation bench `ablation_parallel` measures
    /// the speedup.
    pub fn eval_parallel(&self, query: &Path, threads: usize) -> Vec<(u32, NodeId)> {
        let n = self.corpus.trees().len();
        let threads = threads.max(1).min(n.max(1));
        if threads <= 1 || n == 0 {
            return self.eval(query);
        }
        let chunk = n.div_ceil(threads);
        let mut partials: Vec<Vec<(u32, NodeId)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for tid in lo..hi {
                            for node in self.eval_tree(tid, query) {
                                out.push((tid as u32, node));
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("worker panicked"));
            }
        });
        // Chunks are tid-ordered, so concatenation preserves the
        // sequential order.
        partials.concat()
    }

    /// Parallel result count.
    pub fn count_parallel(&self, query: &Path, threads: usize) -> usize {
        self.eval_parallel(query, threads).len()
    }

    /// Evaluate a whole query batch in parallel, amortizing thread
    /// startup across the batch: each worker takes a contiguous tree
    /// partition and runs *every* query over it. Returns one result
    /// vector per query, identical to sequential evaluation.
    ///
    /// Per-query spawning ([`Walker::eval_parallel`]) only pays off
    /// when a single query's work dominates thread startup; a corpus
    /// session running a query set (like the paper's 23) amortizes the
    /// startup once.
    pub fn eval_batch_parallel(
        &self,
        queries: &[&Path],
        threads: usize,
    ) -> Vec<Vec<(u32, NodeId)>> {
        let n = self.corpus.trees().len();
        let threads = threads.max(1).min(n.max(1));
        if threads <= 1 || n == 0 {
            return queries.iter().map(|q| self.eval(q)).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut partials: Vec<Vec<Vec<(u32, NodeId)>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || {
                        queries
                            .iter()
                            .map(|q| {
                                let mut out = Vec::new();
                                for tid in lo..hi {
                                    for node in self.eval_tree(tid, q) {
                                        out.push((tid as u32, node));
                                    }
                                }
                                out
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("worker panicked"));
            }
        });
        (0..queries.len())
            .map(|qi| {
                partials
                    .iter()
                    .flat_map(|p| p[qi].iter().copied())
                    .collect()
            })
            .collect()
    }
}

fn finish(points: Vec<Point>) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = points.into_iter().filter_map(Point::element).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

struct TreeCtx<'a> {
    tree: &'a Tree,
    labels: &'a [Label],
    corpus: &'a Corpus,
}

impl TreeCtx<'_> {
    fn label(&self, n: NodeId) -> &Label {
        &self.labels[n.index()]
    }

    /// The innermost scope label, defaulting to the tree root (the
    /// paper: without braces, alignment refers to the whole tree).
    fn scope_label(&self, scopes: &[NodeId]) -> &Label {
        match scopes.last() {
            Some(&s) => self.label(s),
            None => self.label(self.tree.root()),
        }
    }

    fn eval_path(
        &self,
        mut points: Vec<Point>,
        path: &Path,
        scopes: &mut Vec<NodeId>,
    ) -> Vec<Point> {
        for step in &path.steps {
            points = self.eval_step(&points, step, scopes);
            if points.is_empty() {
                break;
            }
        }
        if let Some(inner) = &path.scope {
            let mut out = Vec::new();
            for p in points {
                let Some(e) = p.element() else { continue };
                scopes.push(e);
                out.extend(self.eval_path(vec![Point::Elem(e)], inner, scopes));
                scopes.pop();
            }
            dedup_points(&mut out);
            return out;
        }
        points
    }

    fn eval_step(&self, contexts: &[Point], step: &Step, scopes: &mut Vec<NodeId>) -> Vec<Point> {
        let mut out = Vec::new();
        for &c in contexts {
            let mut list = self.candidates(c, step, scopes);
            // Predicates filter sequentially, renumbering positions
            // (XPath 1.0 semantics).
            for pred in &step.predicates {
                let len = list.len();
                let mut kept = Vec::with_capacity(len);
                for (i, &x) in list.iter().enumerate() {
                    if self.pred_holds(x, pred, i + 1, len, scopes) {
                        kept.push(x);
                    }
                }
                list = kept;
            }
            out.extend(list);
        }
        dedup_points(&mut out);
        out
    }

    /// Candidate points for one context, post node-test, alignment and
    /// scope containment, ordered for `position()` (reverse axes run
    /// backwards).
    fn candidates(&self, c: Point, step: &Step, scopes: &[NodeId]) -> Vec<Point> {
        let mut cands: Vec<Point> = match step.axis {
            Axis::Attribute => {
                let Some(e) = c.element() else { return vec![] };
                self.tree
                    .node(e)
                    .attrs
                    .iter()
                    .filter(|(name, _)| match &step.test {
                        NodeTest::Any => true,
                        NodeTest::Tag(t) => {
                            self.corpus.interner().get(&format!("@{t}")) == Some(*name)
                        }
                    })
                    .map(|&(name, _)| Point::Attr(e, name))
                    .collect()
            }
            axis => {
                let rel = axis_rel(axis).expect("attribute handled above");
                let base: Vec<NodeId> = match c {
                    Point::Doc => match axis {
                        Axis::Child => vec![self.tree.root()],
                        Axis::Descendant | Axis::DescendantOrSelf => self.tree.preorder().collect(),
                        // Nothing precedes, follows or contains the
                        // document node.
                        _ => vec![],
                    },
                    Point::Elem(e) | Point::Attr(e, _) => {
                        let cl = self.label(e);
                        // Fast paths for structural axes; label scan
                        // otherwise.
                        match axis {
                            Axis::Child => self.tree.node(e).children.clone(),
                            Axis::Parent => self.tree.node(e).parent.into_iter().collect(),
                            Axis::SelfAxis => vec![e],
                            _ => self
                                .tree
                                .preorder()
                                .filter(|&x| rel.holds(self.label(x), cl))
                                .collect(),
                        }
                    }
                };
                base.into_iter()
                    .filter(|&x| match &step.test {
                        NodeTest::Any => true,
                        NodeTest::Tag(t) => {
                            self.corpus.interner().get(t) == Some(self.tree.node(x).name)
                        }
                    })
                    .map(Point::Elem)
                    .collect()
            }
        };

        // Scope containment: every navigation inside braces stays in
        // the scope subtree.
        if let Some(&s) = scopes.last() {
            let sl = *self.label(s);
            cands.retain(|p| match p.element() {
                Some(e) => label::in_scope(self.label(e), &sl),
                None => false,
            });
        }
        // Edge alignment against the innermost scope (or tree root).
        if step.left_align || step.right_align {
            let sl = *self.scope_label(scopes);
            cands.retain(|p| {
                let Some(e) = p.element() else { return false };
                let l = self.label(e);
                (!step.left_align || label::left_aligned(l, &sl))
                    && (!step.right_align || label::right_aligned(l, &sl))
            });
        }

        cands.sort_unstable_by_key(|p| match *p {
            Point::Doc => (0, 0),
            Point::Elem(e) => (e.0, 0),
            Point::Attr(e, a) => (e.0, a.raw() + 1),
        });
        if is_reverse_axis(step.axis) {
            cands.reverse();
        }
        cands
    }

    fn pred_holds(
        &self,
        x: Point,
        pred: &Pred,
        pos: usize,
        len: usize,
        scopes: &mut Vec<NodeId>,
    ) -> bool {
        match pred {
            Pred::And(a, b) => {
                self.pred_holds(x, a, pos, len, scopes) && self.pred_holds(x, b, pos, len, scopes)
            }
            Pred::Or(a, b) => {
                self.pred_holds(x, a, pos, len, scopes) || self.pred_holds(x, b, pos, len, scopes)
            }
            Pred::Not(p) => !self.pred_holds(x, p, pos, len, scopes),
            Pred::Position(op, rhs) => {
                let rhs = match rhs {
                    PosRhs::Const(n) => *n as usize,
                    PosRhs::Last => len,
                };
                match op {
                    CmpOp::Eq => pos == rhs,
                    CmpOp::Ne => pos != rhs,
                    CmpOp::Lt => pos < rhs,
                    CmpOp::Gt => pos > rhs,
                }
            }
            Pred::Exists(path) => !self.eval_path(vec![x], path, scopes).is_empty(),
            Pred::Cmp { path, op, value } => {
                self.any_string_value(x, path, scopes, |actual| match op {
                    CmpOp::Eq => actual == value,
                    CmpOp::Ne => actual != value,
                    CmpOp::Lt => actual < value.as_str(),
                    CmpOp::Gt => actual > value.as_str(),
                })
            }
            Pred::Count { path, op, value } => {
                let n = self.eval_path(vec![x], path, scopes).len() as u32;
                cmp_u32(*op, n, *value)
            }
            Pred::StrCmp { func, path, arg } => {
                self.any_string_value(x, path, scopes, |actual| func.apply(actual, arg))
            }
            Pred::StrLen { path, op, value } => self.any_string_value(x, path, scopes, |actual| {
                cmp_u32(*op, actual.chars().count() as u32, *value)
            }),
        }
    }

    /// Does any string value selected by `path` from context `x` satisfy
    /// `test`? Only attribute points carry a string value in this data
    /// model; element points silently fail (the relational engine
    /// rejects such queries instead).
    fn any_string_value(
        &self,
        x: Point,
        path: &Path,
        scopes: &mut Vec<NodeId>,
        test: impl Fn(&str) -> bool,
    ) -> bool {
        let points = self.eval_path(vec![x], path, scopes);
        points.iter().any(|p| match *p {
            Point::Attr(e, name) => {
                let Some(v) = self.tree.node(e).attr(name) else {
                    return false;
                };
                test(self.corpus.resolve(v))
            }
            _ => false,
        })
    }
}

fn cmp_u32(op: CmpOp, lhs: u32, rhs: u32) -> bool {
    match op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Lt => lhs < rhs,
        CmpOp::Gt => lhs > rhs,
    }
}

fn dedup_points(points: &mut Vec<Point>) {
    points.sort_unstable_by_key(|p| match *p {
        Point::Doc => (u32::MAX, 0),
        Point::Elem(e) => (e.0, 0),
        Point::Attr(e, a) => (e.0, a.raw() + 1),
    });
    points.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;
    use lpath_syntax::parse;

    /// The paper's Figure 1 tree in bracketed form.
    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn fig1() -> Corpus {
        parse_str(FIG1).unwrap()
    }

    fn names(c: &Corpus, w: &Walker<'_>, q: &str) -> Vec<String> {
        let query = parse(q).unwrap();
        w.eval(&query)
            .into_iter()
            .map(|(t, n)| c.resolve(c.trees()[t as usize].node(n).name).to_string())
            .collect()
    }

    fn count(w: &Walker<'_>, q: &str) -> usize {
        w.count(&parse(q).unwrap())
    }

    /// Figure 2 of the paper: every example query with its expected
    /// result set on the Figure 1 tree.
    #[test]
    fn figure2_results() {
        let c = fig1();
        let w = Walker::new(&c);
        // Q: sentence containing "saw" → {S1}
        assert_eq!(names(&c, &w, "//S[//_[@lex=saw]]"), ["S"]);
        // Immediate following sibling of V → {NP6}
        assert_eq!(count(&w, "//V=>NP"), 1);
        // Immediately following V → {NP6, NP7}
        assert_eq!(count(&w, "//V->NP"), 2);
        // Nouns following a V child of VP → {N9, N13, N14(today)}
        assert_eq!(count(&w, "//VP/V-->N"), 3);
        // …scoped to the VP → {N9, N13}
        assert_eq!(count(&w, "//VP{/V-->N}"), 2);
        // Rightmost child NP of VP → {NP6}
        assert_eq!(count(&w, "//VP{/NP$}"), 1);
        // Rightmost descendant NPs of VP → {NP6, NP11}
        assert_eq!(count(&w, "//VP{//NP$}"), 2);
    }

    #[test]
    fn vertical_navigation() {
        let c = fig1();
        let w = Walker::new(&c);
        assert_eq!(count(&w, "//NP"), 4);
        assert_eq!(count(&w, "/S"), 1);
        assert_eq!(count(&w, "/NP"), 0); // root is S
        assert_eq!(count(&w, "//PP/NP"), 1);
        assert_eq!(count(&w, "//NP\\\\VP"), 1); // VP with NP descendant
        assert_eq!(count(&w, "//Det\\NP"), 2); // NP parents of Det
        assert_eq!(count(&w, "//S//N"), 3);
    }

    #[test]
    fn horizontal_closures_and_or_self() {
        let c = fig1();
        let w = Walker::new(&c);
        // following-or-self of V at V: includes V itself.
        assert_eq!(count(&w, "//V->*V"), 1);
        assert_eq!(count(&w, "//V->*_"), 12); // V + 11 followers
        assert_eq!(count(&w, "//V-->_"), 11);
        // immediate preceding of NP6 is V.
        assert_eq!(names(&c, &w, "//NP<-_[@lex=saw]"), ["V"]);
        // preceding-sibling closure.
        assert_eq!(count(&w, "//N<==Adj"), 1);
        assert_eq!(count(&w, "//N<=Adj"), 1);
        assert_eq!(count(&w, "//N<==Det"), 2);
        // Only in "a dog" is the Det adjacent to the N ("the old man"
        // has Adj in between).
        assert_eq!(count(&w, "//N<=Det"), 1);
    }

    #[test]
    fn alignment_against_whole_tree_by_default() {
        let c = fig1();
        let w = Walker::new(&c);
        // ^NP: NPs starting at the sentence's left edge → NP2 ("I").
        assert_eq!(count(&w, "//^NP"), 1);
        // $N: N at the right edge → N(today).
        assert_eq!(count(&w, "//N$"), 1);
        // Within VP scope, $ moves to VP's right edge.
        assert_eq!(count(&w, "//VP{//N$}"), 1); // N13 (dog)
    }

    #[test]
    fn position_and_last() {
        let c = fig1();
        let w = Walker::new(&c);
        // The XPath circumlocution for immediate-following-sibling
        // (paper §2.2.1) gives the same answer as `=>`.
        assert_eq!(
            count(&w, "//V/following-sibling::_[position()=1][self::NP]"),
            count(&w, "//V=>NP"),
        );
        // Rightmost child of VP, XPath style (paper §2.2.3 example).
        assert_eq!(count(&w, "//VP/_[last()][self::NP]"), 1);
        // Reverse axis numbering: nearest ancestor first.
        assert_eq!(names(&c, &w, "//Prep\\ancestor::_[position()=1]"), ["PP"]);
    }

    #[test]
    fn putative_xpath_edge_alignment_differs() {
        let c = fig1();
        let w = Walker::new(&c);
        // Paper §2.2.3: the putative XPath //VP//_[last()][self::NP]
        // picks the doc-order-last descendant of VP (N13 "dog"), fails
        // the self::NP check, and returns ∅ — while the edge-alignment
        // query //VP{//NP$} returns {NP6, NP11}. Exactly the paper's
        // demonstration that `$` is not expressible with position().
        assert_eq!(count(&w, "//VP//_[last()][self::NP]"), 0);
        assert_eq!(count(&w, "//VP{//NP$}"), 2);
    }

    #[test]
    fn scoping_confines_predicates() {
        let c = fig1();
        let w = Walker::new(&c);
        // V whose following N exists … scoped: today is outside VP.
        assert_eq!(count(&w, "//VP{/V[-->N[@lex=today]]}"), 0);
        assert_eq!(count(&w, "//S{/VP/V[-->N[@lex=today]]}"), 1);
    }

    #[test]
    fn predicate_boolean_logic() {
        let c = fig1();
        let w = Walker::new(&c);
        assert_eq!(count(&w, "//NP[//Det and //Adj]"), 2); // NP6, NP7
        assert_eq!(count(&w, "//NP[//Det or //Adj]"), 3); // + NP11
        assert_eq!(count(&w, "//NP[not(//Det)]"), 1); // only NP2 ("I")
        assert_eq!(count(&w, "//NP[not(//ZZZ)]"), 4); // vacuous negation
    }

    #[test]
    fn attribute_steps() {
        let c = fig1();
        let w = Walker::new(&c);
        assert_eq!(count(&w, "//_[@lex=saw]"), 1);
        assert_eq!(count(&w, "//_[@lex]"), 9); // all terminals
        assert_eq!(count(&w, "//_[@lex!=saw]"), 8);
        assert_eq!(count(&w, "//_[@missing]"), 0);
        assert_eq!(count(&w, "//_[@lex=nonexistent]"), 0);
    }

    #[test]
    fn relative_evaluation_from_node() {
        let c = fig1();
        let w = Walker::new(&c);
        // VP is node 2 in preorder (S=0, NP=1, VP=2).
        let vp = NodeId(2);
        let q = parse("V").unwrap();
        assert_eq!(w.eval_from(0, vp, &q).len(), 1);
        let q = parse("//N").unwrap(); // absolute: ignores context
        assert_eq!(w.eval_from(0, vp, &q).len(), 3);
    }

    #[test]
    fn multi_tree_corpus() {
        let src = format!("{FIG1}\n{FIG1}");
        let c = parse_str(&src).unwrap();
        let w = Walker::new(&c);
        let q = parse("//V->NP").unwrap();
        let results = w.eval(&q);
        assert_eq!(results.len(), 4);
        assert_eq!(results.iter().filter(|(t, _)| *t == 0).count(), 2);
        assert_eq!(results.iter().filter(|(t, _)| *t == 1).count(), 2);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let src: String = std::iter::repeat_n(FIG1, 13).collect::<Vec<_>>().join("\n");
        let c = parse_str(&src).unwrap();
        let w = Walker::new(&c);
        for q in ["//V->NP", "//VP{//NP$}", "//NP[not(//Det)]", "//ZZZ"] {
            let query = parse(q).unwrap();
            let seq = w.eval(&query);
            for threads in [1, 2, 3, 8, 64] {
                assert_eq!(w.eval_parallel(&query, threads), seq, "{q} x{threads}");
            }
        }
    }

    #[test]
    fn batch_parallel_matches_sequential() {
        let src: String = std::iter::repeat_n(FIG1, 7).collect::<Vec<_>>().join("\n");
        let c = parse_str(&src).unwrap();
        let w = Walker::new(&c);
        let queries: Vec<lpath_syntax::Path> = ["//V->NP", "//VP{//NP$}", "//ZZZ", "//_"]
            .iter()
            .map(|q| parse(q).unwrap())
            .collect();
        let refs: Vec<&lpath_syntax::Path> = queries.iter().collect();
        let seq: Vec<_> = queries.iter().map(|q| w.eval(q)).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(w.eval_batch_parallel(&refs, threads), seq, "x{threads}");
        }
    }

    #[test]
    fn exists_and_eval_limit_agree_with_full_evaluation() {
        let src: String = std::iter::repeat_n(FIG1, 9).collect::<Vec<_>>().join("\n");
        let c = parse_str(&src).unwrap();
        let w = Walker::new(&c);
        for q in ["//V->NP", "//VP{//NP$}", "//NP[not(//Det)]", "//ZZZ"] {
            let query = parse(q).unwrap();
            let full = w.eval(&query);
            assert_eq!(w.exists(&query), !full.is_empty(), "{q}");
            for (offset, limit) in [(0, 0), (0, 3), (2, 4), (full.len(), 2), (999, 1), (0, 999)] {
                let want: Vec<(u32, NodeId)> =
                    full.iter().skip(offset).take(limit).copied().collect();
                assert_eq!(
                    w.eval_limit(&query, offset, limit),
                    want,
                    "{q} {offset}/{limit}"
                );
            }
        }
    }

    #[test]
    fn eval_resume_concatenation_is_exact_at_every_boundary() {
        let src: String = std::iter::repeat_n(FIG1, 9).collect::<Vec<_>>().join("\n");
        let c = parse_str(&src).unwrap();
        let w = Walker::new(&c);
        for q in ["//V->NP", "//VP/_[last()]", "//NP[not(//Det)]", "//ZZZ"] {
            let query = parse(q).unwrap();
            let full = w.eval(&query);
            for split in 1..=full.len().max(1) {
                let (head, ckpt) = w.eval_resume(&query, None, split);
                assert_eq!(head, full[..split.min(full.len())], "{q} split {split}");
                let Some(ckpt) = ckpt else {
                    assert_eq!(split, full.len().max(split), "{q}");
                    continue;
                };
                let (tail, end) = w.eval_resume(&query, Some(ckpt), usize::MAX);
                assert_eq!(tail, full[split.min(full.len())..], "{q} split {split}");
                assert!(end.is_none(), "{q} split {split}");
            }
            // Page-at-a-time sweep.
            let (mut got, mut ckpt) = (Vec::new(), None);
            loop {
                let (rows, next) = w.eval_resume(&query, ckpt, 2);
                got.extend(rows);
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
            assert_eq!(got, full, "{q} sweep");
        }
    }

    #[test]
    fn empty_results_are_empty() {
        let c = fig1();
        let w = Walker::new(&c);
        assert_eq!(count(&w, "//ZZZ"), 0);
        assert_eq!(count(&w, "//NP/ZZZ"), 0);
        assert_eq!(count(&w, "//S\\_"), 0); // root has no parent element
    }
}
