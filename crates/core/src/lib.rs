//! The LPath query engine — the primary contribution of Bird et al.,
//! *Designing and Evaluating an XPath Dialect for Linguistic Queries*
//! (ICDE 2006).
//!
//! Three evaluators, one language:
//!
//! * [`Engine`] — the paper's engine: interval labeling
//!   (Definition 4.1), a relational node table clustered by
//!   `{name, tid, left, …}` with the §5 secondary indexes, LPath → SQL
//!   translation (Table 2 join templates) and indexed join execution;
//! * [`Walker`] — a direct tree walker over labels, covering the full
//!   language including features the relational translation rejects;
//! * [`naive::NaiveEvaluator`] — a quadratic oracle computing every
//!   relation from parent pointers and leaf ordinals, with
//!   [`naive::proper_analyses`] realizing Definition 3.1 literally.
//!
//! ```
//! use lpath_model::ptb::parse_str;
//! use lpath_core::Engine;
//!
//! let corpus = parse_str(
//!     "( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man)))) )",
//! ).unwrap();
//! let engine = Engine::build(&corpus);
//! assert_eq!(engine.count("//VP{/NP$}").unwrap(), 1);
//!
//! // Document-ordered enumeration is resumable: stop after a page,
//! // keep the checkpoint, continue later with nothing replayed.
//! let ast = lpath_syntax::parse("//_").unwrap();
//! let (page1, ckpt) = engine.query_resume(&ast, None, 3).unwrap();
//! let (rest, done) = engine.query_resume(&ast, ckpt, usize::MAX).unwrap();
//! assert!(done.is_none());
//! let mut all = page1; all.extend(rest);
//! assert_eq!(all, engine.query("//_").unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod engine;
pub mod naive;
pub mod queryset;
pub mod translate;
pub mod walker;

pub use engine::{
    BatchStats, Engine, EngineError, ExplainAnalyze, Matches, QueryCheckpoint, QueryResult,
    StepReport,
};
pub use naive::NaiveEvaluator;
pub use queryset::{benchmark_batch, BenchQuery, ExtQuery, EXTENDED_QUERIES, QUERIES};
pub use translate::{Translator, Unsupported};
pub use walker::{Walker, WalkerCheckpoint};
