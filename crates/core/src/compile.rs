//! Axis compilation: LPath axes → Table 2 relations.
//!
//! This module is the bridge between the three evaluators:
//!
//! * [`axis_rel`] maps a syntactic [`Axis`] to the label predicate
//!   [`AxisRel`] used by the tree walker;
//! * [`axis_join`] maps it to the *join template* of the paper's
//!   Table 2 — a conjunction of column comparisons between the step's
//!   alias (`x`) and its context alias (`c`) — used by the SQL
//!   translator. Axes whose Table 2 characterization is disjunctive
//!   (the horizontal `-or-self` closures) return `None`; the relational
//!   engine rejects them while the walker supports them.

use lpath_model::AxisRel;
use lpath_relstore::Cmp;
use lpath_syntax::Axis;

/// Columns of the node relation `{tid, left, right, depth, id, pid,
/// name, value}` (paper §5).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NCol {
    /// Tree identifier.
    Tid,
    /// Left leaf-interval boundary.
    Left,
    /// Right leaf-interval boundary.
    Right,
    /// Node depth (root element = 1).
    Depth,
    /// Unique node id (document node = 1).
    Id,
    /// Parent's id.
    Pid,
    /// Interned tag or attribute name.
    Name,
    /// Interned attribute value (NULL on element rows).
    Value,
}

impl NCol {
    /// The relational column name.
    pub fn name(self) -> &'static str {
        match self {
            NCol::Tid => "tid",
            NCol::Left => "left",
            NCol::Right => "right",
            NCol::Depth => "depth",
            NCol::Id => "id",
            NCol::Pid => "pid",
            NCol::Name => "name",
            NCol::Value => "value",
        }
    }

    /// All columns, in schema order.
    pub const ALL: [NCol; 8] = [
        NCol::Tid,
        NCol::Left,
        NCol::Right,
        NCol::Depth,
        NCol::Id,
        NCol::Pid,
        NCol::Name,
        NCol::Value,
    ];
}

/// One conjunct of a join template: `x.left cmp c.right`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct JoinCond {
    /// Column of the step node `x`.
    pub x: NCol,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Column of the context node `c`.
    pub c: NCol,
}

const fn jc(x: NCol, cmp: Cmp, c: NCol) -> JoinCond {
    JoinCond { x, cmp, c }
}

/// The Table 2 join template for `axis`: conditions relating the target
/// alias `x` to the context alias `c`, *excluding* the implicit
/// `x.tid = c.tid` which every axis shares. `None` for axes with no
/// conjunctive characterization (horizontal `-or-self` closures) and
/// for [`Axis::Attribute`], which the translator handles specially.
///
/// Vertical axes include the (implied) interval-containment conditions
/// alongside the `pid`/`id` equalities: they are redundant logically but
/// give the planner a clustered-index range to probe.
pub fn axis_join(axis: Axis) -> Option<Vec<JoinCond>> {
    use NCol::*;
    Some(match axis {
        Axis::SelfAxis => vec![jc(Id, Cmp::Eq, Id)],
        Axis::Child => vec![
            jc(Pid, Cmp::Eq, Id),
            jc(Left, Cmp::Ge, Left),
            jc(Right, Cmp::Le, Right),
        ],
        Axis::Parent => vec![
            jc(Id, Cmp::Eq, Pid),
            jc(Left, Cmp::Le, Left),
            jc(Right, Cmp::Ge, Right),
        ],
        Axis::Descendant => vec![
            jc(Left, Cmp::Ge, Left),
            jc(Right, Cmp::Le, Right),
            jc(Depth, Cmp::Gt, Depth),
        ],
        Axis::DescendantOrSelf => vec![
            jc(Left, Cmp::Ge, Left),
            jc(Right, Cmp::Le, Right),
            jc(Depth, Cmp::Ge, Depth),
        ],
        Axis::Ancestor => vec![
            jc(Left, Cmp::Le, Left),
            jc(Right, Cmp::Ge, Right),
            jc(Depth, Cmp::Lt, Depth),
        ],
        Axis::AncestorOrSelf => vec![
            jc(Left, Cmp::Le, Left),
            jc(Right, Cmp::Ge, Right),
            jc(Depth, Cmp::Le, Depth),
        ],
        Axis::ImmediateFollowing => vec![jc(Left, Cmp::Eq, Right)],
        Axis::Following => vec![jc(Left, Cmp::Ge, Right)],
        Axis::ImmediatePreceding => vec![jc(Right, Cmp::Eq, Left)],
        Axis::Preceding => vec![jc(Right, Cmp::Le, Left)],
        Axis::ImmediateFollowingSibling => {
            vec![jc(Pid, Cmp::Eq, Pid), jc(Left, Cmp::Eq, Right)]
        }
        Axis::FollowingSibling => vec![jc(Pid, Cmp::Eq, Pid), jc(Left, Cmp::Ge, Right)],
        Axis::ImmediatePrecedingSibling => {
            vec![jc(Pid, Cmp::Eq, Pid), jc(Right, Cmp::Eq, Left)]
        }
        Axis::PrecedingSibling => vec![jc(Pid, Cmp::Eq, Pid), jc(Right, Cmp::Le, Left)],
        Axis::FollowingOrSelf
        | Axis::PrecedingOrSelf
        | Axis::FollowingSiblingOrSelf
        | Axis::PrecedingSiblingOrSelf
        | Axis::Attribute => return None,
    })
}

/// The label relation ([`AxisRel`]) for `axis`, for the tree walker.
/// `None` only for [`Axis::Attribute`].
pub fn axis_rel(axis: Axis) -> Option<AxisRel> {
    Some(match axis {
        Axis::Child => AxisRel::Child,
        Axis::Descendant => AxisRel::Descendant,
        Axis::DescendantOrSelf => AxisRel::DescendantOrSelf,
        Axis::Parent => AxisRel::Parent,
        Axis::Ancestor => AxisRel::Ancestor,
        Axis::AncestorOrSelf => AxisRel::AncestorOrSelf,
        Axis::SelfAxis => AxisRel::SelfNode,
        Axis::ImmediateFollowing => AxisRel::ImmediateFollowing,
        Axis::Following => AxisRel::Following,
        Axis::FollowingOrSelf => AxisRel::FollowingOrSelf,
        Axis::ImmediatePreceding => AxisRel::ImmediatePreceding,
        Axis::Preceding => AxisRel::Preceding,
        Axis::PrecedingOrSelf => AxisRel::PrecedingOrSelf,
        Axis::ImmediateFollowingSibling => AxisRel::ImmediateFollowingSibling,
        Axis::FollowingSibling => AxisRel::FollowingSibling,
        Axis::FollowingSiblingOrSelf => AxisRel::FollowingSiblingOrSelf,
        Axis::ImmediatePrecedingSibling => AxisRel::ImmediatePrecedingSibling,
        Axis::PrecedingSibling => AxisRel::PrecedingSibling,
        Axis::PrecedingSiblingOrSelf => AxisRel::PrecedingSiblingOrSelf,
        Axis::Attribute => return None,
    })
}

/// Is this axis a *reverse* axis in the XPath sense (its node list is
/// numbered in reverse document order for `position()`)?
pub fn is_reverse_axis(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Parent
            | Axis::Ancestor
            | Axis::AncestorOrSelf
            | Axis::ImmediatePreceding
            | Axis::Preceding
            | Axis::PrecedingOrSelf
            | Axis::ImmediatePrecedingSibling
            | Axis::PrecedingSibling
            | Axis::PrecedingSiblingOrSelf
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::{label_tree, Interner, Tree};

    /// Every conjunctive join template must agree with the walker's
    /// label relation on all node pairs of a nontrivial tree.
    #[test]
    fn join_templates_match_axis_relations() {
        let mut i = Interner::new();
        let lex = i.intern("@lex");
        let mut t = Tree::new(i.intern("S"));
        let a = t.add_child(t.root(), i.intern("A"));
        let b = t.add_child(a, i.intern("B"));
        t.set_attr(b, lex, i.intern("w1"));
        let c = t.add_child(a, i.intern("C"));
        t.set_attr(c, lex, i.intern("w2"));
        let d = t.add_child(t.root(), i.intern("D"));
        let e = t.add_child(d, i.intern("E"));
        t.set_attr(e, lex, i.intern("w3"));
        let labels = label_tree(&t);

        let col = |l: &lpath_model::Label, c: NCol| -> u32 {
            match c {
                NCol::Tid => 0,
                NCol::Left => l.left,
                NCol::Right => l.right,
                NCol::Depth => l.depth,
                NCol::Id => l.id,
                NCol::Pid => l.pid,
                NCol::Name | NCol::Value => unreachable!("not label columns"),
            }
        };

        for axis in Axis::ALL {
            let (Some(join), Some(rel)) = (axis_join(axis), axis_rel(axis)) else {
                continue;
            };
            for x in &labels {
                for ctx in &labels {
                    let by_join = join.iter().all(|j| j.cmp.eval(col(x, j.x), col(ctx, j.c)));
                    assert_eq!(by_join, rel.holds(x, ctx), "{axis:?} x={x:?} c={ctx:?}");
                }
            }
        }
    }

    #[test]
    fn disjunctive_axes_have_no_template() {
        for axis in [
            Axis::FollowingOrSelf,
            Axis::PrecedingOrSelf,
            Axis::FollowingSiblingOrSelf,
            Axis::PrecedingSiblingOrSelf,
            Axis::Attribute,
        ] {
            assert!(axis_join(axis).is_none(), "{axis:?}");
        }
    }

    #[test]
    fn reverse_axis_classification() {
        assert!(is_reverse_axis(Axis::Preceding));
        assert!(is_reverse_axis(Axis::Ancestor));
        assert!(!is_reverse_axis(Axis::Following));
        assert!(!is_reverse_axis(Axis::Child));
    }

    #[test]
    fn every_axis_has_a_walker_relation_except_attribute() {
        for axis in Axis::ALL {
            assert_eq!(axis_rel(axis).is_none(), axis == Axis::Attribute);
        }
    }
}
