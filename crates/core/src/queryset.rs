//! The 23 evaluation queries of the paper's Figure 6(c), with the
//! result sizes reported there and the metadata the experiments need.

/// One benchmark query.
#[derive(Copy, Clone, Debug)]
pub struct BenchQuery {
    /// 1-based id (Q1–Q23), matching the paper's figures.
    pub id: usize,
    /// The LPath query text, exactly as in Figure 6(c).
    pub lpath: &'static str,
    /// Result size the paper reports on the full WSJ corpus.
    pub paper_wsj: usize,
    /// Result size the paper reports on the full Switchboard corpus.
    pub paper_swb: usize,
    /// Is this one of the 11 queries the paper evaluates on the XPath
    /// engine in Figure 10?
    pub xpath_expressible: bool,
    /// What the query asks, in words.
    pub description: &'static str,
}

/// Figure 6(c), verbatim.
pub const QUERIES: [BenchQuery; 23] = [
    BenchQuery {
        id: 1,
        lpath: "//S[//_[@lex=saw]]",
        paper_wsj: 153,
        paper_swb: 339,
        xpath_expressible: true,
        description: "sentences containing the word 'saw'",
    },
    BenchQuery {
        id: 2,
        lpath: "//VB->NP",
        paper_wsj: 23618,
        paper_swb: 16557,
        xpath_expressible: false,
        description: "NPs immediately following a VB",
    },
    BenchQuery {
        id: 3,
        lpath: "//VP/VB-->NN",
        paper_wsj: 63857,
        paper_swb: 32386,
        xpath_expressible: false,
        description: "NNs following a VB child of a VP",
    },
    BenchQuery {
        id: 4,
        lpath: "//VP{/VB-->NN}",
        paper_wsj: 46116,
        paper_swb: 25305,
        xpath_expressible: false,
        description: "same, scoped within the VP",
    },
    BenchQuery {
        id: 5,
        lpath: "//VP{/NP$}",
        paper_wsj: 29923,
        paper_swb: 22554,
        xpath_expressible: false,
        description: "NPs that are the rightmost child of a VP",
    },
    BenchQuery {
        id: 6,
        lpath: "//VP{//NP$}",
        paper_wsj: 215_104,
        paper_swb: 112_159,
        xpath_expressible: false,
        description: "NPs that are the rightmost descendant of a VP",
    },
    BenchQuery {
        id: 7,
        lpath: "//VP[{//^VB->NP->PP$}]",
        paper_wsj: 2831,
        paper_swb: 1963,
        xpath_expressible: false,
        description: "VPs spanned exactly by VB NP PP",
    },
    BenchQuery {
        id: 8,
        lpath: "//S[//NP/ADJP]",
        paper_wsj: 7832,
        paper_swb: 2900,
        xpath_expressible: true,
        description: "sentences with an ADJP under an NP",
    },
    BenchQuery {
        id: 9,
        lpath: "//NP[not(//JJ)]",
        paper_wsj: 211_392,
        paper_swb: 109_311,
        xpath_expressible: true,
        description: "NPs containing no adjective",
    },
    BenchQuery {
        id: 10,
        lpath: "//NP[->PP[//IN[@lex=of]]=>VP]",
        paper_wsj: 192,
        paper_swb: 31,
        xpath_expressible: false,
        description: "NPs followed by an of-PP whose next sibling is a VP",
    },
    BenchQuery {
        id: 11,
        lpath: "//S[{//_[@lex=what]->_[@lex=building]}]",
        paper_wsj: 2,
        paper_swb: 5,
        xpath_expressible: false,
        description: "sentences where 'what' immediately precedes 'building'",
    },
    BenchQuery {
        id: 12,
        lpath: "//_[@lex=rapprochement]",
        paper_wsj: 1,
        paper_swb: 0,
        xpath_expressible: true,
        description: "the word 'rapprochement'",
    },
    BenchQuery {
        id: 13,
        lpath: "//_[@lex=1929]",
        paper_wsj: 14,
        paper_swb: 0,
        xpath_expressible: true,
        description: "the token '1929'",
    },
    BenchQuery {
        id: 14,
        lpath: "//ADVP-LOC-CLR",
        paper_wsj: 60,
        paper_swb: 0,
        xpath_expressible: true,
        description: "ADVP-LOC-CLR constituents",
    },
    BenchQuery {
        id: 15,
        lpath: "//WHPP",
        paper_wsj: 87,
        paper_swb: 20,
        xpath_expressible: true,
        description: "WHPP constituents",
    },
    BenchQuery {
        id: 16,
        lpath: "//RRC/PP-TMP",
        paper_wsj: 8,
        paper_swb: 3,
        xpath_expressible: true,
        description: "temporal PPs under reduced relative clauses",
    },
    BenchQuery {
        id: 17,
        lpath: "//UCP-PRD/ADJP-PRD",
        paper_wsj: 17,
        paper_swb: 4,
        xpath_expressible: true,
        description: "predicative ADJPs under predicative UCPs",
    },
    BenchQuery {
        id: 18,
        lpath: "//NP/NP/NP/NP/NP",
        paper_wsj: 254,
        paper_swb: 12,
        xpath_expressible: true,
        description: "five-deep NP chains",
    },
    BenchQuery {
        id: 19,
        lpath: "//VP/VP/VP",
        paper_wsj: 8769,
        paper_swb: 6093,
        xpath_expressible: true,
        description: "three-deep VP chains",
    },
    BenchQuery {
        id: 20,
        lpath: "//PP=>SBAR",
        paper_wsj: 640,
        paper_swb: 651,
        xpath_expressible: false,
        description: "SBARs immediately following a sibling PP",
    },
    BenchQuery {
        id: 21,
        lpath: "//ADVP=>ADJP",
        paper_wsj: 15,
        paper_swb: 37,
        xpath_expressible: false,
        description: "ADJPs immediately following a sibling ADVP",
    },
    BenchQuery {
        id: 22,
        lpath: "//NP=>NP=>NP",
        paper_wsj: 7,
        paper_swb: 7,
        xpath_expressible: false,
        description: "three adjacent sibling NPs",
    },
    BenchQuery {
        id: 23,
        lpath: "//VP=>VP",
        paper_wsj: 20,
        paper_swb: 72,
        xpath_expressible: false,
        description: "VPs immediately following a sibling VP",
    },
];

/// The 11 queries of Figure 10 (the XPath-labeling comparison).
pub fn xpath_queries() -> impl Iterator<Item = &'static BenchQuery> {
    QUERIES.iter().filter(|q| q.xpath_expressible)
}

/// A beyond-paper query exercising the extension surface: the core
/// function library (paper footnote 1), the `-or-self` closures and the
/// `position()` circumlocutions of §2.2.
#[derive(Copy, Clone, Debug)]
pub struct ExtQuery {
    /// 1-based id (E1–…).
    pub id: usize,
    /// The LPath query text.
    pub lpath: &'static str,
    /// Does the relational translation accept it? (`false` → the tree
    /// walker evaluates it, like position()/or-self.)
    pub sql_supported: bool,
    /// A Figure 6(c)-style query this one must agree with exactly
    /// (a semantic identity used as a cross-check), if any.
    pub equivalent_to: Option<&'static str>,
    /// What the query asks, in words.
    pub description: &'static str,
}

/// The extended evaluation set. Identities double as correctness
/// checks: e.g. `count(p) = 0` ≡ `not(p)`, and the XPath
/// `_[last()][self::NP]` circumlocution ≡ the `{/NP$}` alignment.
pub const EXTENDED_QUERIES: [ExtQuery; 12] = [
    ExtQuery {
        id: 1,
        lpath: "//_[contains(@lex,ing)]",
        sql_supported: true,
        equivalent_to: None,
        description: "tokens containing 'ing'",
    },
    ExtQuery {
        id: 2,
        lpath: "//_[starts-with(@lex,c)]",
        sql_supported: true,
        equivalent_to: None,
        description: "tokens starting with 'c'",
    },
    ExtQuery {
        id: 3,
        lpath: "//_[ends-with(@lex,s)]",
        sql_supported: true,
        equivalent_to: None,
        description: "tokens ending in 's'",
    },
    ExtQuery {
        id: 4,
        lpath: "//_[string-length(@lex)>8]",
        sql_supported: true,
        equivalent_to: None,
        description: "long tokens (more than 8 characters)",
    },
    ExtQuery {
        id: 5,
        lpath: "//NP[count(//JJ)=0]",
        sql_supported: true,
        equivalent_to: Some("//NP[not(//JJ)]"),
        description: "Q9 via count(): NPs with no adjective",
    },
    ExtQuery {
        id: 6,
        lpath: "//S[count(//VP)>0]",
        sql_supported: true,
        equivalent_to: Some("//S[//VP]"),
        description: "existence via count(): sentences with a VP",
    },
    ExtQuery {
        id: 7,
        lpath: "//VP/_[last()][self::NP]",
        sql_supported: false,
        equivalent_to: Some("//VP{/NP$}"),
        description: "Q5 via the position() circumlocution (§2.2.3)",
    },
    ExtQuery {
        id: 8,
        lpath: "//VB/following-sibling::_[position()=1][self::NP]",
        sql_supported: false,
        equivalent_to: Some("//VB=>NP"),
        description: "immediate-following-sibling via position() (§2.2.1)",
    },
    ExtQuery {
        id: 9,
        lpath: "//VB->*NP",
        sql_supported: false,
        equivalent_to: None,
        description: "following-or-self closure (Table 1)",
    },
    ExtQuery {
        id: 10,
        lpath: "//NP<=*NP",
        sql_supported: false,
        equivalent_to: None,
        description: "preceding-sibling-or-self closure",
    },
    ExtQuery {
        id: 11,
        lpath: "//_[@lex][not(contains(@lex,e))]",
        sql_supported: true,
        equivalent_to: None,
        description: "tokens avoiding the letter 'e'",
    },
    ExtQuery {
        id: 12,
        lpath: "//S{//^NP-SBJ->VB}",
        sql_supported: true,
        equivalent_to: None,
        description: "VBs right after a sentence-initial subject, scoped",
    },
];

/// The scalability experiment of Figure 9 uses Q3, Q6 and Q11.
pub const FIG9_QUERY_IDS: [usize; 3] = [3, 6, 11];

/// Look a query up by its 1-based id.
pub fn by_id(id: usize) -> &'static BenchQuery {
    &QUERIES[id - 1]
}

/// The full Figure 6(c) set as one batch, in id order — the fixture of
/// the multi-query benchmark and the batched-execution tests. Many of
/// these share an anchor (e.g. every `//VP…` query probes the same
/// name key), which is exactly what batched evaluation exploits.
pub fn benchmark_batch() -> Vec<&'static str> {
    QUERIES.iter().map(|q| q.lpath).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_queries_with_sequential_ids() {
        assert_eq!(QUERIES.len(), 23);
        for (i, q) in QUERIES.iter().enumerate() {
            assert_eq!(q.id, i + 1);
            assert_eq!(by_id(q.id).lpath, q.lpath);
        }
    }

    #[test]
    fn eleven_xpath_expressible() {
        let ids: Vec<usize> = xpath_queries().map(|q| q.id).collect();
        assert_eq!(ids, [1, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19]);
    }

    #[test]
    fn all_queries_parse() {
        for q in QUERIES {
            lpath_syntax::parse(q.lpath).unwrap_or_else(|e| panic!("Q{}: {e}", q.id));
        }
    }

    #[test]
    fn fig9_queries_exist() {
        for id in FIG9_QUERY_IDS {
            assert!(by_id(id).id == id);
        }
    }

    #[test]
    fn extended_queries_parse_and_ids_are_sequential() {
        for (i, q) in EXTENDED_QUERIES.iter().enumerate() {
            assert_eq!(q.id, i + 1);
            lpath_syntax::parse(q.lpath).unwrap_or_else(|e| panic!("E{}: {e}", q.id));
            if let Some(eq) = q.equivalent_to {
                lpath_syntax::parse(eq).unwrap_or_else(|e| panic!("E{} ≡ {eq}: {e}", q.id));
            }
        }
    }

    #[test]
    fn sql_supported_flags_match_the_translator() {
        use lpath_model::ptb::parse_str;
        let corpus = parse_str("( (S (NP (JJ old) (NN man)) (VP (VB saw))) )").unwrap();
        let engine = crate::Engine::build(&corpus);
        for q in EXTENDED_QUERIES {
            let accepted = engine.count(q.lpath).is_ok();
            assert_eq!(accepted, q.sql_supported, "E{}: {}", q.id, q.lpath);
        }
    }

    #[test]
    fn extended_identities_hold_on_a_small_corpus() {
        use crate::Walker;
        use lpath_model::ptb::parse_str;
        let corpus = parse_str(
            "( (S (NP (JJ old) (NN man)) (VP (VB saw) (NP (NN dog)) (NP (NN cat)))) )\n\
             ( (S (NP (NN it)) (VP (VB ran))) )",
        )
        .unwrap();
        let walker = Walker::new(&corpus);
        for q in EXTENDED_QUERIES {
            let Some(eq) = q.equivalent_to else { continue };
            let a = walker.eval(&lpath_syntax::parse(q.lpath).unwrap());
            let b = walker.eval(&lpath_syntax::parse(eq).unwrap());
            assert_eq!(a, b, "E{}: {} ≢ {}", q.id, q.lpath, eq);
        }
    }
}
