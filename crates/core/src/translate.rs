//! LPath → conjunctive SQL translation (paper §4).
//!
//! Every step of a query becomes an alias of the node relation; every
//! axis becomes the Table 2 join template between the step's alias and
//! its context alias (plus the implicit `tid` equality); predicates
//! become correlated `EXISTS` / `NOT EXISTS` subqueries; subtree scoping
//! adds containment conjuncts against the scope alias; and edge
//! alignment adds `left`/`right` equalities against the scope (or a
//! lazily created root alias when no scope is open — "align within the
//! whole tree").
//!
//! The translation is *partial* by design, mirroring the paper's
//! engine:
//!
//! * the horizontal `-or-self` closures have no conjunctive Table 2
//!   row ([`crate::compile::axis_join`] returns `None`);
//! * `position()`/`last()` have no relational counterpart (the paper
//!   §2.2.3 explains why the position function is the wrong tool for
//!   linguistic trees — LPath's alignment replaces it);
//! * `or` in predicates and `<`/`>` on attribute values (symbol ids are
//!   not lexicographically ordered) are likewise rejected.
//!
//! The tree [walker](crate::walker) evaluates all of these; the
//! differential test suite confines itself to the shared fragment.

use lpath_model::{label::DOC_ID, Interner};
use lpath_relstore::{
    Cmp, ColId, ColRef, Cond, ConjQuery, Database, InCond, Operand, SubQuery, TableId, NULL,
};
use lpath_syntax::{Axis, CmpOp, NodeTest, Path, Pred, Step};

use crate::compile::{axis_join, NCol};

/// Why a query cannot be translated to the relational engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not translatable to SQL: {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

/// Column handles of the node relation, resolved once.
#[derive(Copy, Clone, Debug)]
pub struct NodeCols {
    cols: [ColId; 8],
}

impl NodeCols {
    /// Resolve against the node table's schema.
    pub fn resolve(db: &Database, table: TableId) -> Self {
        let schema = db.table(table).schema();
        let mut cols = [ColId(0); 8];
        for (i, c) in NCol::ALL.iter().enumerate() {
            cols[i] = schema.col_expect(c.name());
        }
        NodeCols { cols }
    }

    /// The [`ColId`] of a node-relation column.
    #[inline]
    pub fn col(&self, c: NCol) -> ColId {
        self.cols[c as usize]
    }
}

/// The LPath → SQL translator.
pub struct Translator<'a> {
    /// The node relation.
    pub table: TableId,
    /// Resolved column handles.
    pub cols: NodeCols,
    /// The corpus dictionary (tags, attribute names, values).
    pub interner: &'a Interner,
}

/// Context of a step: where its axis starts from.
#[derive(Copy, Clone, Debug)]
enum Ctx {
    /// The implicit document node (absolute path start).
    Document,
    /// An alias of the current query level.
    Alias(usize),
    /// An alias of the enclosing query (first step of a predicate).
    Outer(usize),
}

impl<'a> Translator<'a> {
    /// Build a translator for one node relation.
    pub fn new(table: TableId, cols: NodeCols, interner: &'a Interner) -> Self {
        Translator {
            table,
            cols,
            interner,
        }
    }

    /// Translate a full query. Relative queries are evaluated from each
    /// tree's root element, matching the walker.
    pub fn translate(&self, path: &Path) -> Result<ConjQuery, Unsupported> {
        let mut q = ConjQuery {
            distinct: true,
            ..Default::default()
        };
        let ctx = if path.absolute {
            Ctx::Document
        } else {
            let root = self.fresh_root(&mut q, None);
            Ctx::Alias(root)
        };
        let result = self.path_into(&mut q, path, ctx, None)?;
        q.projection = vec![
            ColRef::new(result, self.cols.col(NCol::Tid)),
            ColRef::new(result, self.cols.col(NCol::Id)),
        ];
        q.dedup_free = dedup_free_path(path, true);
        Ok(q)
    }

    fn cref(&self, alias: usize, c: NCol) -> ColRef {
        ColRef::new(alias, self.cols.col(c))
    }

    /// A condition that can never hold — used for tests against symbols
    /// absent from the corpus, which XPath semantics treats as an empty
    /// match, not an error.
    fn unsat(&self, q: &mut ConjQuery, alias: usize) {
        q.conds.push(Cond::against_const(
            self.cref(alias, NCol::Left),
            Cmp::Lt,
            0,
        ));
    }

    /// Create an alias constrained to the tree-root element, optionally
    /// tied to the same tree as `tie_to`.
    fn fresh_root(&self, q: &mut ConjQuery, tie_to: Option<usize>) -> usize {
        let r = q.add_alias(self.table);
        q.conds
            .push(Cond::against_const(self.cref(r, NCol::Depth), Cmp::Eq, 1));
        q.conds.push(Cond::against_const(
            self.cref(r, NCol::Value),
            Cmp::Eq,
            NULL,
        ));
        if let Some(a) = tie_to {
            q.conds.push(Cond::between(
                self.cref(r, NCol::Tid),
                Cmp::Eq,
                self.cref(a, NCol::Tid),
            ));
        }
        r
    }

    /// Mirror an alias of the enclosing query into the current level
    /// (`m.tid = outer.tid ∧ m.id = outer.id`) so that deeper levels
    /// can reference it without multi-level correlation.
    fn mirror_outer(&self, q: &mut ConjQuery, outer_alias: usize) -> usize {
        let m = q.add_alias(self.table);
        q.conds.push(Cond::new(
            self.cref(m, NCol::Tid),
            Cmp::Eq,
            Operand::Outer(self.cref(outer_alias, NCol::Tid)),
        ));
        q.conds.push(Cond::new(
            self.cref(m, NCol::Id),
            Cmp::Eq,
            Operand::Outer(self.cref(outer_alias, NCol::Id)),
        ));
        // The element row, not an attribute copy.
        q.conds.push(Cond::against_const(
            self.cref(m, NCol::Value),
            Cmp::Eq,
            NULL,
        ));
        m
    }

    /// Translate a (relative or absolute) path into `q`. `scope` is the
    /// innermost open subtree scope, as a local alias. Returns the
    /// result alias.
    fn path_into(
        &self,
        q: &mut ConjQuery,
        path: &Path,
        mut ctx: Ctx,
        mut scope: Option<usize>,
    ) -> Result<usize, Unsupported> {
        for step in &path.steps {
            let alias = self.step_into(q, step, ctx, scope)?;
            ctx = Ctx::Alias(alias);
        }
        if let Some(inner) = &path.scope {
            // `HP { RLP }`: the head result becomes both context and
            // scope of the continuation.
            let scope_alias = match ctx {
                Ctx::Alias(a) => a,
                Ctx::Outer(a) => self.mirror_outer(q, a),
                Ctx::Document => {
                    return Err(Unsupported(
                        "scoping braces need a scope node (empty absolute head)".into(),
                    ))
                }
            };
            return self.path_into(q, inner, Ctx::Alias(scope_alias), {
                scope = Some(scope_alias);
                scope
            });
        }
        match ctx {
            Ctx::Alias(a) => Ok(a),
            Ctx::Outer(a) => Ok(self.mirror_outer(q, a)),
            Ctx::Document => Err(Unsupported("empty path".into())),
        }
    }

    /// Translate one step: new alias + node-test conds + axis join +
    /// scope containment + alignment + predicates.
    fn step_into(
        &self,
        q: &mut ConjQuery,
        step: &Step,
        ctx: Ctx,
        scope: Option<usize>,
    ) -> Result<usize, Unsupported> {
        let x = q.add_alias(self.table);

        // Node test.
        match (step.axis, &step.test) {
            (Axis::Attribute, NodeTest::Tag(t)) => match self.interner.get(&format!("@{t}")) {
                Some(sym) => q.conds.push(Cond::against_const(
                    self.cref(x, NCol::Name),
                    Cmp::Eq,
                    sym.raw(),
                )),
                None => self.unsat(q, x),
            },
            (Axis::Attribute, NodeTest::Any) => {
                // Any attribute row: it carries a value.
                q.conds.push(Cond::against_const(
                    self.cref(x, NCol::Value),
                    Cmp::Ne,
                    NULL,
                ));
            }
            (_, NodeTest::Tag(t)) => match self.interner.get(t) {
                Some(sym) => q.conds.push(Cond::against_const(
                    self.cref(x, NCol::Name),
                    Cmp::Eq,
                    sym.raw(),
                )),
                None => self.unsat(q, x),
            },
            (_, NodeTest::Any) => {
                // Wildcard matches elements, not attribute rows.
                q.conds.push(Cond::against_const(
                    self.cref(x, NCol::Value),
                    Cmp::Eq,
                    NULL,
                ));
            }
        }

        // Axis join against the context.
        let tid = |a: usize| self.cref(a, NCol::Tid);
        match (step.axis, ctx) {
            (Axis::Attribute, Ctx::Alias(c)) => {
                q.conds.push(Cond::between(tid(x), Cmp::Eq, tid(c)));
                q.conds.push(Cond::between(
                    self.cref(x, NCol::Id),
                    Cmp::Eq,
                    self.cref(c, NCol::Id),
                ));
            }
            (Axis::Attribute, Ctx::Outer(c)) => {
                q.conds
                    .push(Cond::new(tid(x), Cmp::Eq, Operand::Outer(tid(c))));
                q.conds.push(Cond::new(
                    self.cref(x, NCol::Id),
                    Cmp::Eq,
                    Operand::Outer(self.cref(c, NCol::Id)),
                ));
            }
            (Axis::Attribute, Ctx::Document) => self.unsat(q, x),
            (axis, Ctx::Document) => match axis {
                Axis::Child => q.conds.push(Cond::against_const(
                    self.cref(x, NCol::Pid),
                    Cmp::Eq,
                    DOC_ID,
                )),
                // Every element descends from the document node: no
                // extra condition beyond the node test.
                Axis::Descendant | Axis::DescendantOrSelf => {}
                // Nothing else relates to the document node.
                _ => self.unsat(q, x),
            },
            (axis, Ctx::Alias(c)) => {
                let Some(join) = axis_join(axis) else {
                    return Err(Unsupported(format!(
                        "axis {} has no conjunctive label characterization",
                        axis.name()
                    )));
                };
                q.conds.push(Cond::between(tid(x), Cmp::Eq, tid(c)));
                for j in join {
                    q.conds
                        .push(Cond::between(self.cref(x, j.x), j.cmp, self.cref(c, j.c)));
                }
            }
            (axis, Ctx::Outer(c)) => {
                let Some(join) = axis_join(axis) else {
                    return Err(Unsupported(format!(
                        "axis {} has no conjunctive label characterization",
                        axis.name()
                    )));
                };
                q.conds
                    .push(Cond::new(tid(x), Cmp::Eq, Operand::Outer(tid(c))));
                for j in join {
                    q.conds.push(Cond::new(
                        self.cref(x, j.x),
                        j.cmp,
                        Operand::Outer(self.cref(c, j.c)),
                    ));
                }
            }
        }

        // Scope containment (descendant-or-self of the scope alias).
        if let Some(s) = scope {
            q.conds.push(Cond::between(
                self.cref(x, NCol::Left),
                Cmp::Ge,
                self.cref(s, NCol::Left),
            ));
            q.conds.push(Cond::between(
                self.cref(x, NCol::Right),
                Cmp::Le,
                self.cref(s, NCol::Right),
            ));
            q.conds.push(Cond::between(
                self.cref(x, NCol::Depth),
                Cmp::Ge,
                self.cref(s, NCol::Depth),
            ));
        }

        // Edge alignment against the scope, or the tree root.
        if step.left_align || step.right_align {
            let target = match scope {
                Some(s) => s,
                None => self.fresh_root(q, Some(x)),
            };
            if step.left_align {
                q.conds.push(Cond::between(
                    self.cref(x, NCol::Left),
                    Cmp::Eq,
                    self.cref(target, NCol::Left),
                ));
            }
            if step.right_align {
                q.conds.push(Cond::between(
                    self.cref(x, NCol::Right),
                    Cmp::Eq,
                    self.cref(target, NCol::Right),
                ));
            }
        }

        // Predicates.
        for pred in &step.predicates {
            self.pred_into(q, pred, x, scope, false)?;
        }

        Ok(x)
    }

    /// Compile one predicate into `q`. Supports conjunctions of
    /// (possibly negated) path-existence and value comparisons — the
    /// paper's translation target.
    ///
    /// Positive predicates are **inlined as joins** on the same query
    /// level: the paper's §4 translates "each LPath axis to an SQL
    /// join" and relies on `DISTINCT` to collapse witness multiplicity.
    /// Inlining is what lets the planner start from a high-selectivity
    /// value predicate (`@lex = 'rapprochement'`) instead of probing a
    /// correlated subquery once per candidate — the effect the paper
    /// credits for its good times on Q1 and Q10–Q13. Negated predicates
    /// must remain `NOT EXISTS` subqueries.
    fn pred_into(
        &self,
        q: &mut ConjQuery,
        pred: &Pred,
        context: usize,
        scope: Option<usize>,
        negated: bool,
    ) -> Result<(), Unsupported> {
        match pred {
            Pred::And(a, b) if !negated => {
                self.pred_into(q, a, context, scope, false)?;
                self.pred_into(q, b, context, scope, false)?;
                Ok(())
            }
            Pred::Not(p) => self.pred_into(q, p, context, scope, !negated),
            Pred::Or(..) => Err(Unsupported(
                "disjunctive predicates (use the tree walker)".into(),
            )),
            Pred::And(..) => Err(Unsupported(
                "negated conjunction (use the tree walker)".into(),
            )),
            Pred::Position(..) => Err(Unsupported(
                "position()/last() (LPath replaces them with alignment)".into(),
            )),
            Pred::Exists(path) => {
                if negated {
                    let sub = self.subquery_for(path, context, scope, None)?;
                    q.subqueries.push(SubQuery {
                        negated: true,
                        query: sub,
                    });
                } else {
                    self.path_into(q, path, Ctx::Alias(context), scope)?;
                }
                Ok(())
            }
            Pred::Cmp { path, op, value } => {
                let vcmp = match op {
                    CmpOp::Eq => Cmp::Eq,
                    CmpOp::Ne => Cmp::Ne,
                    CmpOp::Lt | CmpOp::Gt => {
                        return Err(Unsupported("ordered comparison on interned values".into()))
                    }
                };
                self.require_attr_final(path)?;
                if negated {
                    let sub = self.subquery_for(
                        path,
                        context,
                        scope,
                        Some(ValueConstraint::Cmp(vcmp, value)),
                    )?;
                    q.subqueries.push(SubQuery {
                        negated: true,
                        query: sub,
                    });
                } else {
                    let result = self.path_into(q, path, Ctx::Alias(context), scope)?;
                    self.value_cond(q, result, vcmp, value);
                }
                Ok(())
            }
            Pred::Count { path, op, value } => {
                // count() thresholds that reduce to (non-)existence
                // translate; true cardinality thresholds would need
                // GROUP BY/HAVING, which the conjunctive target lacks.
                let exists = match (op, value) {
                    (CmpOp::Gt | CmpOp::Ne, 0) => true,
                    (CmpOp::Eq, 0) | (CmpOp::Lt, 1) => false,
                    _ => {
                        return Err(Unsupported(
                            "count() thresholds beyond existence (use the tree walker)".into(),
                        ))
                    }
                };
                // `not(count(p) = 0)` is plain existence; fold the
                // negations together.
                self.pred_into(q, &Pred::Exists(path.clone()), context, scope, {
                    // positive iff existence parity matches
                    negated == exists
                })
            }
            Pred::StrCmp { func, path, arg } => {
                self.require_attr_final(path)?;
                let members = self.symbols_matching(|text| func.apply(text, arg));
                self.apply_in_set(q, path, context, scope, negated, members)
            }
            Pred::StrLen { path, op, value } => {
                self.require_attr_final(path)?;
                let members = self.symbols_matching(|text| {
                    let n = text.chars().count() as u32;
                    match op {
                        CmpOp::Eq => n == *value,
                        CmpOp::Ne => n != *value,
                        CmpOp::Lt => n < *value,
                        CmpOp::Gt => n > *value,
                    }
                });
                self.apply_in_set(q, path, context, scope, negated, members)
            }
        }
    }

    /// Reject non-attribute-final paths for value-level predicates.
    fn require_attr_final(&self, path: &Path) -> Result<(), Unsupported> {
        if !path.steps.last().is_some_and(|s| s.axis == Axis::Attribute) || path.scope.is_some() {
            return Err(Unsupported(
                "value comparison requires an attribute-final path".into(),
            ));
        }
        Ok(())
    }

    /// Interned symbols whose text satisfies `test` — the expansion of a
    /// string function into a `value IN (…)` set. The set is computed
    /// once at translation time against the corpus dictionary, the same
    /// trick the paper's engine plays for value equality (symbols are
    /// hash-consed, so text predicates become integer set membership).
    fn symbols_matching(&self, test: impl Fn(&str) -> bool) -> Vec<u32> {
        self.interner
            .iter()
            .filter(|(_, text)| test(text))
            .map(|(sym, _)| sym.raw())
            .collect()
    }

    /// Constrain the value of an attribute-final predicate path to a
    /// symbol set, negating at the EXISTS level when required.
    fn apply_in_set(
        &self,
        q: &mut ConjQuery,
        path: &Path,
        context: usize,
        scope: Option<usize>,
        negated: bool,
        members: Vec<u32>,
    ) -> Result<(), Unsupported> {
        if negated {
            let sub =
                self.subquery_for(path, context, scope, Some(ValueConstraint::In(members)))?;
            q.subqueries.push(SubQuery {
                negated: true,
                query: sub,
            });
        } else if members.is_empty() {
            // No symbol matches: unsatisfiable, like an unknown literal.
            let alias = self.path_into(q, path, Ctx::Alias(context), scope)?;
            self.unsat(q, alias);
        } else {
            let result = self.path_into(q, path, Ctx::Alias(context), scope)?;
            q.in_conds
                .push(InCond::new(self.cref(result, NCol::Value), members));
        }
        Ok(())
    }

    /// Constrain the `value` column of `alias` against a literal,
    /// treating uninterned literals per XPath semantics (an `=` can
    /// never match, a `!=` always does).
    fn value_cond(&self, q: &mut ConjQuery, alias: usize, cmp: Cmp, value: &str) {
        match self.interner.get(value) {
            Some(sym) => q.conds.push(Cond::against_const(
                self.cref(alias, NCol::Value),
                cmp,
                sym.raw(),
            )),
            None => {
                if cmp == Cmp::Eq {
                    self.unsat(q, alias);
                }
            }
        }
    }

    /// Build the EXISTS subquery for a predicate path, optionally
    /// constraining the final (attribute) alias's `value` column.
    fn subquery_for(
        &self,
        path: &Path,
        context: usize,
        scope: Option<usize>,
        constraint: Option<ValueConstraint<'_>>,
    ) -> Result<ConjQuery, Unsupported> {
        let mut sub = ConjQuery::default();
        // Containment scope carries into predicates: mirror the outer
        // scope alias locally.
        let inner_scope = scope.map(|s| self.mirror_outer(&mut sub, s));
        let result = self.path_into(&mut sub, path, Ctx::Outer(context), inner_scope)?;
        match constraint {
            Some(ValueConstraint::Cmp(cmp, value)) => {
                self.value_cond(&mut sub, result, cmp, value);
            }
            Some(ValueConstraint::In(members)) => {
                if members.is_empty() {
                    // Nothing can match: the EXISTS is false (so a
                    // NOT EXISTS around it is vacuously true).
                    self.unsat(&mut sub, result);
                } else {
                    sub.in_conds
                        .push(InCond::new(self.cref(result, NCol::Value), members));
                }
            }
            None => {}
        }
        Ok(sub)
    }
}

/// Is the translated join provably duplicate-free, so `DISTINCT` is a
/// no-op and counting may skip the dedup watermark sets?
///
/// The projection is the final step's alias; duplicates arise exactly
/// when some *other* alias can bind more than one way for a fixed
/// output binding. Walking the step chain backwards from the output,
/// a context binding is uniquely recoverable from its step's binding
/// for `Child` (the parent), the immediate-sibling axes (the adjacent
/// sibling) and `Attribute` (the owning element); the document start
/// and the per-tree root/alignment aliases are unique given the
/// output's tree. Positive predicates inline witness aliases (the
/// paper's DISTINCT absorbs their multiplicity), so only fully
/// negated predicates — which compile to `NOT EXISTS` subqueries with
/// no top-level alias — qualify. Conservative by design: `false`
/// merely means "dedup as usual".
fn dedup_free_path(path: &Path, outermost: bool) -> bool {
    for (i, step) in path.steps.iter().enumerate() {
        if !step.predicates.iter().all(|p| pred_negated_only(p, false)) {
            return false;
        }
        // The outermost first step hangs off the document (absolute)
        // or the per-tree root (relative) — unique either way. Every
        // later link must be reverse-functional. A scope continuation's
        // first step hangs off the scope head, which is an ordinary
        // chain link.
        let anchored = outermost && i == 0;
        if !anchored && !reverse_functional(step.axis) {
            return false;
        }
    }
    match &path.scope {
        Some(inner) => dedup_free_path(inner, false),
        None => true,
    }
}

/// Axes whose context binding is a function of the step binding.
fn reverse_functional(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Child
            | Axis::ImmediateFollowingSibling
            | Axis::ImmediatePrecedingSibling
            | Axis::Attribute
    )
}

/// Does this predicate compile to (NOT) EXISTS subqueries only, adding
/// no top-level alias? Mirrors [`Translator::pred_into`]'s negation
/// bookkeeping, including the `count()` existence folding.
fn pred_negated_only(p: &Pred, negated: bool) -> bool {
    match p {
        Pred::Not(inner) => pred_negated_only(inner, !negated),
        // The translator only accepts positive conjunctions; a negated
        // one is untranslatable, so the hint does not matter.
        Pred::And(a, b) if !negated => pred_negated_only(a, false) && pred_negated_only(b, false),
        Pred::Exists(_) | Pred::Cmp { .. } | Pred::StrCmp { .. } | Pred::StrLen { .. } => negated,
        Pred::Count { op, value, .. } => {
            let exists = match (op, value) {
                (CmpOp::Gt | CmpOp::Ne, 0) => true,
                (CmpOp::Eq, 0) | (CmpOp::Lt, 1) => false,
                _ => return false,
            };
            negated == exists
        }
        Pred::And(..) | Pred::Or(..) | Pred::Position(..) => false,
    }
}

/// A constraint on the `value` column of a predicate path's final alias.
enum ValueConstraint<'a> {
    /// Compare against one literal.
    Cmp(Cmp, &'a str),
    /// Membership in a symbol set (string-function expansion).
    In(Vec<u32>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_syntax::parse;

    /// Build a tiny engine-shaped database to translate against.
    fn setup() -> (Database, TableId, Interner) {
        use lpath_relstore::{Schema, Table};
        let table = Table::new(Schema::new(&[
            "tid", "left", "right", "depth", "id", "pid", "name", "value",
        ]));
        let mut db = Database::new();
        let t = db.add_table("node", table);
        let mut i = Interner::new();
        for s in ["@lex", "S", "NP", "VP", "V", "N", "saw"] {
            i.intern(s);
        }
        (db, t, i)
    }

    fn sql_of(q: &str) -> Result<String, Unsupported> {
        let (db, t, i) = setup();
        let cols = NodeCols::resolve(&db, t);
        let tr = Translator::new(t, cols, &i);
        let cq = tr.translate(&parse(q).unwrap())?;
        Ok(cq.to_sql(&db))
    }

    #[test]
    fn simple_descendant_query() {
        let sql = sql_of("//NP").unwrap();
        // name = sym(NP); sym ids: @lex=0 S=1 NP=2 …
        assert_eq!(
            sql,
            "SELECT DISTINCT n0.tid, n0.id FROM node n0 WHERE n0.name = 2"
        );
    }

    #[test]
    fn child_of_document_is_root() {
        let sql = sql_of("/S").unwrap();
        assert!(sql.contains("n0.pid = 1"), "{sql}");
        assert!(sql.contains("n0.name = 1"), "{sql}");
    }

    #[test]
    fn immediate_following_is_an_equation() {
        let sql = sql_of("//V->NP").unwrap();
        assert!(sql.contains("n1.left = n0.right"), "{sql}");
        assert!(sql.contains("n1.tid = n0.tid"), "{sql}");
    }

    #[test]
    fn sibling_axis_shares_pid() {
        let sql = sql_of("//V==>NP").unwrap();
        assert!(sql.contains("n1.pid = n0.pid"), "{sql}");
        assert!(sql.contains("n1.left >= n0.right"), "{sql}");
    }

    #[test]
    fn scoping_adds_containment() {
        let sql = sql_of("//VP{/V-->N}").unwrap();
        // V and N both contained in VP's interval.
        assert!(sql.contains("n1.left >= n0.left"), "{sql}");
        assert!(sql.contains("n1.right <= n0.right"), "{sql}");
        assert!(sql.contains("n2.left >= n0.left"), "{sql}");
        assert!(sql.contains("n2.right <= n0.right"), "{sql}");
    }

    #[test]
    fn alignment_without_scope_uses_root() {
        let sql = sql_of("//NP$").unwrap();
        // A root alias with depth = 1 appears, right-aligned.
        assert!(sql.contains("n1.depth = 1"), "{sql}");
        assert!(sql.contains("n0.right = n1.right"), "{sql}");
    }

    #[test]
    fn alignment_with_scope_uses_scope() {
        let sql = sql_of("//VP{/NP$}").unwrap();
        assert!(sql.contains("n1.right = n0.right"), "{sql}");
    }

    #[test]
    fn positive_predicates_inline_as_joins() {
        // The paper's translation: predicates become extra aliases of
        // the node relation joined in, with DISTINCT absorbing witness
        // multiplicity; only negation needs (NOT) EXISTS.
        let sql = sql_of("//S[//_[@lex=saw]]").unwrap();
        assert!(!sql.contains("EXISTS"), "{sql}");
        // The witness element and its attribute alias both join in;
        // the attribute compares value to sym(saw)=6.
        assert!(sql.contains("node n1, node n2"), "{sql}");
        assert!(sql.contains("n2.value = 6"), "{sql}");
        assert!(sql.contains("n1.tid = n0.tid"), "{sql}");
        assert!(sql.starts_with("SELECT DISTINCT n0.tid, n0.id"), "{sql}");
    }

    #[test]
    fn negation_becomes_not_exists() {
        let sql = sql_of("//NP[not(//V)]").unwrap();
        assert!(sql.contains("NOT EXISTS"), "{sql}");
    }

    #[test]
    fn unknown_symbols_are_unsatisfiable_not_errors() {
        let sql = sql_of("//ZZZ").unwrap();
        assert!(sql.contains("n0.left < 0"), "{sql}");
        let sql = sql_of("//_[@lex=zzz]").unwrap();
        assert!(sql.contains("left < 0"), "{sql}");
        // != unknown: no value condition at all.
        let sql = sql_of("//_[@lex!=zzz]").unwrap();
        assert!(!sql.contains("left < 0"), "{sql}");
    }

    #[test]
    fn unsupported_features_are_rejected() {
        for q in [
            "//V->*NP",
            "//N<=*_",
            "//VP/_[last()]",
            "//_[position()=1]",
            "//NP[//V or //N]",
            "//_[@lex>a]",
            "//NP[not(//V and //N)]",
        ] {
            assert!(sql_of(q).is_err(), "should be unsupported: {q}");
        }
    }

    #[test]
    fn wildcard_excludes_attribute_rows() {
        let sql = sql_of("//_").unwrap();
        assert!(sql.contains(&format!("n0.value = {NULL}")), "{sql}");
    }

    fn dedup_free_of(q: &str) -> bool {
        let (db, t, i) = setup();
        let cols = NodeCols::resolve(&db, t);
        let tr = Translator::new(t, cols, &i);
        tr.translate(&parse(q).unwrap()).unwrap().dedup_free
    }

    #[test]
    fn dedup_free_classification() {
        // Provably duplicate-free: one free axis, then only
        // reverse-functional links; negated predicates add no aliases.
        for q in [
            "//NP",
            "/S",
            "//_",
            "//NP/NP/NP",
            "//PP=>S",
            "//NP<=VP",
            "//VP{/NP$}",
            "//NP[not(//V)]",
            "//NP[count(//V)=0]",
            "//NP[not(count(//V)>0)]/N",
        ] {
            assert!(dedup_free_of(q), "should be dedup-free: {q}");
        }
        // Duplicates possible: a later step re-reaches the same output
        // binding from several contexts, or a positive predicate joins
        // in a witness alias whose multiplicity DISTINCT must absorb.
        for q in [
            "//S//NP",
            "//V->NP",  // nested nodes can share a right edge
            "//V-->NP", // order is many-to-many
            "//S/VP//NP",
            "//S[//V]",
            "//_[@lex=saw]",      // positive attr predicate joins a witness
            "//NP[count(//V)>0]", // folds to positive existence
            "//VP{//NP$}",        // scope continuation is not reverse-functional
            "//NP[not(//V)][//N]",
        ] {
            assert!(!dedup_free_of(q), "should not be dedup-free: {q}");
        }
    }

    #[test]
    fn figure6c_translatable_queries() {
        // All 23 evaluation queries must translate (they avoid the
        // unsupported fragment) — tags not in the toy interner become
        // unsatisfiable conditions, not errors.
        for q in crate::queryset::QUERIES {
            assert!(sql_of(q.lpath).is_ok(), "Q{}: {}", q.id, q.lpath);
        }
    }
}
