//! The LPath query engine: corpus → labeled relation → indexed
//! relational evaluation (paper §4–5).
//!
//! [`Engine::build`] labels every tree (Definition 4.1), loads element
//! and attribute rows into the node relation `{tid, left, right, depth,
//! id, pid, name, value}`, clusters it by `{name, tid, left, right,
//! depth, id, pid}` and builds the secondary indexes of §5. Queries are
//! parsed, translated to conjunctive SQL, planned and executed
//! in-process.

use lpath_model::{label_tree, Corpus, Interner, NodeId};
use lpath_relstore::{
    self as rel, Cmp, ColRef, Cond, Database, OptGoal, PlannerConfig, Schema, Table, TableId,
    Value, NULL,
};
use lpath_syntax::{parse, Path, SyntaxError};

use crate::compile::NCol;
use crate::translate::{NodeCols, Translator, Unsupported};

/// Everything that can go wrong answering a query.
#[derive(Debug)]
pub enum EngineError {
    /// The query text does not parse.
    Syntax(SyntaxError),
    /// The query parses but has no relational translation.
    Unsupported(Unsupported),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Syntax(e) => e.fmt(f),
            EngineError::Unsupported(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Syntax(e)
    }
}

impl From<Unsupported> for EngineError {
    fn from(e: Unsupported) -> Self {
        EngineError::Unsupported(e)
    }
}

/// The relational LPath engine over one corpus.
pub struct Engine {
    db: Database,
    node: TableId,
    cols: NodeCols,
    interner: Interner,
    planner: PlannerConfig,
    ntrees: usize,
}

impl Engine {
    /// Label, load, cluster, index and analyze `corpus`.
    pub fn build(corpus: &Corpus) -> Self {
        Self::with_config(corpus, PlannerConfig::default())
    }

    /// Like [`Engine::build`] with an explicit planner configuration
    /// (used by the join-order ablation).
    pub fn with_config(corpus: &Corpus, planner: PlannerConfig) -> Self {
        let schema = Schema::new(&[
            "tid", "left", "right", "depth", "id", "pid", "name", "value",
        ]);
        let mut table = Table::new(schema);
        let mut row_count = 0usize;
        for t in corpus.trees() {
            row_count += t.len();
        }
        table.reserve(row_count);
        for (tid, tree) in corpus.trees().iter().enumerate() {
            let labels = label_tree(tree);
            for id in tree.preorder() {
                let l = &labels[id.index()];
                let node = tree.node(id);
                let base = [
                    tid as Value,
                    l.left,
                    l.right,
                    l.depth,
                    l.id,
                    l.pid,
                    node.name.raw(),
                    NULL,
                ];
                table.push_row(&base);
                for &(aname, aval) in &node.attrs {
                    let mut row = base;
                    row[6] = aname.raw();
                    row[7] = aval.raw();
                    table.push_row(&row);
                }
            }
        }

        let mut db = Database::new();
        // Clustered order, exactly the paper's.
        let cluster: Vec<rel::ColId> = ["name", "tid", "left", "right", "depth", "id", "pid"]
            .iter()
            .map(|c| table.schema().col_expect(c))
            .collect();
        table.cluster_by(&cluster);
        let node = db.add_table("node", table);
        let cols = NodeCols::resolve(&db, node);

        // The clustered key doubles as the primary access path.
        db.add_index(node, "clustered", cluster);
        // Secondary indexes of §5.
        let c = |n: NCol| cols.col(n);
        db.add_index(
            node,
            "tid_value_id",
            vec![c(NCol::Tid), c(NCol::Value), c(NCol::Id)],
        );
        db.add_index(
            node,
            "value_tid_id",
            vec![c(NCol::Value), c(NCol::Tid), c(NCol::Id)],
        );
        db.add_index(node, "tid_id", vec![c(NCol::Tid), c(NCol::Id)]);
        db.analyze(node, &[c(NCol::Name), c(NCol::Value)]);

        Engine {
            db,
            node,
            cols,
            interner: corpus.interner().clone(),
            planner,
            ntrees: corpus.trees().len(),
        }
    }

    /// The underlying database (for inspection and the benchmarks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of rows in the node relation (elements + attributes).
    pub fn relation_size(&self) -> usize {
        self.db.table(self.node).num_rows()
    }

    fn translator(&self) -> Translator<'_> {
        Translator::new(self.node, self.cols, &self.interner)
    }

    /// Translate a parsed query to the logical conjunctive form.
    pub fn translate(&self, query: &Path) -> Result<rel::ConjQuery, Unsupported> {
        self.translator().translate(query)
    }

    /// The SQL statement the paper's engine would send to its RDBMS,
    /// with symbolic names resolved for readability.
    pub fn sql(&self, query: &str) -> Result<String, EngineError> {
        let ast = parse(query)?;
        self.sql_ast(&ast)
    }

    /// Like [`Engine::sql`] for an already-parsed query (callers that
    /// keep the AST — e.g. a plan cache — avoid re-parsing and
    /// re-translating).
    pub fn sql_ast(&self, ast: &Path) -> Result<String, EngineError> {
        let cq = self.translate(ast)?;
        let name_col = self.cols.col(NCol::Name);
        let value_col = self.cols.col(NCol::Value);
        Ok(cq.to_sql_with(&self.db, &|r: ColRef, v: Value| {
            if (r.col == name_col || r.col == value_col) && v != NULL {
                self.interner
                    .iter()
                    .find(|(s, _)| s.raw() == v)
                    .map(|(_, text)| format!("'{text}'"))
            } else {
                None
            }
        }))
    }

    /// An EXPLAIN-style rendering of the physical plan.
    pub fn explain(&self, query: &str) -> Result<String, EngineError> {
        let ast = parse(query)?;
        let cq = self.translate(&ast)?;
        let plan = rel::plan(&self.db, &cq, &self.planner);
        Ok(plan.to_string())
    }

    /// Evaluate a query string, returning `(tree index, node)` matches
    /// sorted in document order.
    pub fn query(&self, query: &str) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let ast = parse(query)?;
        self.query_ast(&ast)
    }

    /// Evaluate a parsed query.
    pub fn query_ast(&self, ast: &Path) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let plan = self.plan_ast(ast)?;
        let mut out = rows_to_matches(rel::execute(&plan, &self.db));
        out.sort_unstable();
        Ok(out)
    }

    /// Translate and plan a parsed query.
    fn plan_ast(&self, ast: &Path) -> Result<rel::Plan, EngineError> {
        let cq = self.translate(ast)?;
        Ok(rel::plan(&self.db, &cq, &self.planner))
    }

    /// Result size — the measure reported in Figure 6(c). Counts
    /// through the streaming cursor: no match-set materialization, no
    /// sort.
    pub fn count(&self, query: &str) -> Result<usize, EngineError> {
        let ast = parse(query)?;
        self.count_ast(&ast)
    }

    /// Result size of an already-parsed query.
    pub fn count_ast(&self, ast: &Path) -> Result<usize, EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(rel::count(&plan, &self.db))
    }

    /// Does the query match anywhere? Stops at the first witness —
    /// Boolean evaluation is far cheaper than enumeration
    /// (Gottlob–Koch–Schulz), and the cursor exploits exactly that gap.
    pub fn exists(&self, query: &str) -> Result<bool, EngineError> {
        let ast = parse(query)?;
        self.exists_ast(&ast)
    }

    /// [`Engine::exists`] for an already-parsed query.
    pub fn exists_ast(&self, ast: &Path) -> Result<bool, EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(rel::exists(&plan, &self.db))
    }

    /// A streaming iterator over the query's matches, yielded in
    /// **pipeline order** (the order the index-nested-loop join
    /// produces them) — *not* document order. Dropping the iterator
    /// abandons the remaining enumeration; use [`Engine::query`] when
    /// the sorted full set is wanted, [`Engine::query_limit`] for
    /// document-ordered pages.
    pub fn matches(&self, query: &str) -> Result<Matches<'_>, EngineError> {
        let ast = parse(query)?;
        self.matches_ast(&ast)
    }

    /// [`Engine::matches`] for an already-parsed query.
    pub fn matches_ast(&self, ast: &Path) -> Result<Matches<'_>, EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(Matches {
            cursor: rel::Cursor::owning(plan, &self.db),
        })
    }

    /// The `[offset, offset + limit)` slice of [`Engine::query`]'s
    /// document-ordered result, computed with early termination:
    /// the corpus is evaluated in tree-id ranges, each range's matches
    /// sorted and appended — ranges partition the corpus, so
    /// concatenation *is* document order — until the page is covered.
    ///
    /// The limit is pushed all the way down: the plan is re-planned
    /// with [`OptGoal::FirstRows`] (startup-cost join order), the
    /// initial range is sized from the planner's selectivity estimate
    /// so the expected number of rounds is ~1 for dense *and* sparse
    /// queries, and the range bounds become **index range bounds** on
    /// the first join step whenever its access path's next key column
    /// is `tid` — each round then touches only its slice of the
    /// anchor's candidates instead of rescanning them all.
    pub fn query_limit(
        &self,
        query: &str,
        offset: usize,
        limit: usize,
    ) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let ast = parse(query)?;
        self.query_limit_ast(&ast, offset, limit)
    }

    /// [`Engine::query_limit`] for an already-parsed query.
    pub fn query_limit_ast(
        &self,
        ast: &Path,
        offset: usize,
        limit: usize,
    ) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let need = offset.saturating_add(limit).max(1);
        self.query_limit_with(ast, offset, limit, OptGoal::FirstRows(need))
    }

    /// [`Engine::query_limit_ast`] with an explicit optimization goal —
    /// the A/B switch of the `page` benchmark. [`OptGoal::AllRows`]
    /// reproduces the pre-limit-aware behavior exactly (the plan the
    /// engine uses for full enumeration, a fixed initial span of 8
    /// trees doubling per round, range bounds as residual filters);
    /// [`OptGoal::FirstRows`] is the limit-aware path described on
    /// [`Engine::query_limit`]. Both return identical pages.
    pub fn query_limit_with(
        &self,
        ast: &Path,
        offset: usize,
        limit: usize,
        goal: OptGoal,
    ) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let cfg = PlannerConfig {
            order: self.planner.order,
            goal,
        };
        let cq = self.translate(ast)?;
        if limit == 0 {
            // Untranslatable queries still error above; translatable
            // ones skip planning for the empty page.
            return Ok(Vec::new());
        }
        let plan = rel::plan(&self.db, &cq, &cfg);
        let need = offset.saturating_add(limit);
        if plan.steps.is_empty() {
            // No join step to push the range filter onto (cannot
            // happen for translated queries; defensive).
            let mut all = rows_to_matches(rel::execute(&plan, &self.db));
            all.sort_unstable();
            all.truncate(need);
            return Ok(all.split_off(offset.min(all.len())));
        }
        let adaptive = !matches!(goal, OptGoal::AllRows);
        let mut out: Vec<(u32, NodeId)> = Vec::new();
        let mut lo = 0usize;
        let mut span = if adaptive {
            initial_span(need, plan.estimated_result, self.ntrees)
        } else {
            8
        };
        while lo < self.ntrees && out.len() < need {
            let hi = lo.saturating_add(span).min(self.ntrees);
            let mut ranged = plan.clone();
            self.push_tid_range(&mut ranged, lo as Value, hi as Value, adaptive);
            let mut chunk = rows_to_matches(rel::execute(&ranged, &self.db));
            chunk.sort_unstable();
            out.extend(chunk);
            lo = hi;
            span = if adaptive {
                next_span(out.len(), lo, need, self.ntrees)
            } else {
                span.saturating_mul(2)
            };
        }
        out.truncate(need);
        Ok(out.split_off(offset.min(out.len())))
    }

    /// Constrain the plan's first join step to anchor rows with
    /// `lo <= tid < hi`. When `into_index` and the step probes an index
    /// whose key column right after the equality prefix is `tid` (the
    /// clustered `name`-led index, `value_tid_id`, …), the bounds become
    /// index range bounds — the probe itself skips every other tree.
    /// Otherwise (full scans, exhausted keys, pre-existing bounds) they
    /// fall back to residual filters, which is always correct.
    fn push_tid_range(&self, plan: &mut rel::Plan, lo: Value, hi: Value, into_index: bool) {
        let tid = self.cols.col(NCol::Tid);
        let step = &mut plan.steps[0];
        if into_index {
            if let rel::AccessPath::IndexRange {
                index,
                eq,
                lo: plo,
                hi: phi,
            } = &mut step.access
            {
                if plo.is_none()
                    && phi.is_none()
                    && self.db.index(*index).key().get(eq.len()) == Some(&tid)
                {
                    *plo = Some((true, rel::Operand::Const(lo)));
                    *phi = Some((false, rel::Operand::Const(hi)));
                    return;
                }
            }
        }
        let anchor = ColRef::new(step.alias, tid);
        step.residual.push(Cond::against_const(anchor, Cmp::Ge, lo));
        step.residual.push(Cond::against_const(anchor, Cmp::Lt, hi));
    }
}

/// First tree-id span of the adaptive chunk schedule: the number of
/// trees expected to hold `need` matches (from the planner's result
/// estimate), doubled for slack. An estimate of zero means "probably
/// nothing anywhere" — cover the whole corpus in one round instead of
/// crawling through O(log n) empty rounds.
fn initial_span(need: usize, estimated_result: usize, ntrees: usize) -> usize {
    if estimated_result == 0 {
        return ntrees.max(1);
    }
    let trees = need.saturating_mul(ntrees) / estimated_result;
    trees
        .saturating_add(1)
        .saturating_mul(2)
        .clamp(1, ntrees.max(1))
}

/// Span of the next round, re-estimated from the density observed so
/// far: `found` matches over `scanned` trees leaves `need - found` to
/// cover, again doubled for slack. A round that found nothing means the
/// estimate was wrong — finish the corpus in one go. Growth is clamped
/// below by the trees already scanned, so even an adversarial corpus
/// sees O(log n) rounds.
fn next_span(found: usize, scanned: usize, need: usize, ntrees: usize) -> usize {
    let remaining = ntrees.saturating_sub(scanned);
    if found == 0 {
        return remaining.max(1);
    }
    let predicted = need.saturating_sub(found).saturating_mul(scanned) / found;
    // The caller clamps `lo + span` to the corpus, so only the lower
    // bound matters here.
    predicted.saturating_add(1).saturating_mul(2).max(scanned)
}

/// Convert relational `(tid, id)` rows to `(tree index, node)` matches.
/// Relational ids start at 2 (1 is the document node).
fn rows_to_matches(rows: Vec<Vec<Value>>) -> Vec<(u32, NodeId)> {
    rows.into_iter()
        .map(|row| {
            debug_assert_eq!(row.len(), 2);
            (row[0], NodeId(row[1] - 2))
        })
        .collect()
}

/// A streaming match iterator (see [`Engine::matches`]). Yields
/// `(tree index, node)` pairs in pipeline order as the underlying
/// [`rel::Cursor`] produces them.
pub struct Matches<'e> {
    cursor: rel::Cursor<'e>,
}

impl Iterator for Matches<'_> {
    type Item = (u32, NodeId);

    fn next(&mut self) -> Option<(u32, NodeId)> {
        self.cursor.next().map(|row| {
            debug_assert_eq!(row.len(), 2);
            (row[0], NodeId(row[1] - 2))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn engine() -> Engine {
        Engine::build(&parse_str(FIG1).unwrap())
    }

    #[test]
    fn relation_matches_figure5() {
        let e = engine();
        // 15 elements + 9 @lex attributes.
        assert_eq!(e.relation_size(), 24);
    }

    #[test]
    fn figure2_results_via_sql() {
        let e = engine();
        assert_eq!(e.count("//S[//_[@lex=saw]]").unwrap(), 1);
        assert_eq!(e.count("//V=>NP").unwrap(), 1);
        assert_eq!(e.count("//V->NP").unwrap(), 2);
        assert_eq!(e.count("//VP/V-->N").unwrap(), 3);
        assert_eq!(e.count("//VP{/V-->N}").unwrap(), 2);
        assert_eq!(e.count("//VP{/NP$}").unwrap(), 1);
        assert_eq!(e.count("//VP{//NP$}").unwrap(), 2);
    }

    #[test]
    fn engine_agrees_with_walker() {
        let corpus = parse_str(FIG1).unwrap();
        let e = Engine::build(&corpus);
        let w = crate::Walker::new(&corpus);
        for q in [
            "//NP",
            "/S",
            "//V->NP",
            "//V-->N",
            "//NP<--_",
            "//N<==Det",
            "//N<=Det",
            "//VP{//NP$}",
            "//^NP",
            "//N$",
            "//S[//NP/PP]",
            "//NP[//Det and //Adj]",
            "//NP[not(//Det)]",
            "//_[@lex=saw]",
            "//_[@lex!=dog]",
            "//_[@lex]",
            "//Det\\NP",
            "//NP\\\\VP",
            "//VP[{//^V->NP$}]",
            "//S{/VP/V[-->N[@lex=dog]]}",
            // Function library (paper footnote 1).
            "//NP[count(//Det)>0]",
            "//NP[count(/NP)=0]",
            "//NP[not(count(//Det)=0)]",
            "//_[contains(@lex,'og')]",
            "//_[starts-with(@lex,s)]",
            "//_[ends-with(@lex,w)]",
            "//_[not(contains(@lex,'a'))]",
            "//_[string-length(@lex)=3]",
            "//_[string-length(@lex)>4]",
            "//NP[//_[contains(@lex,o)]]",
            "//VP{//_[starts-with(@lex,d)]}",
        ] {
            let ast = lpath_syntax::parse(q).unwrap();
            let got = e.query(q).unwrap_or_else(|err| panic!("{q}: {err}"));
            let want = w.eval(&ast);
            assert_eq!(got, want, "disagreement on {q}");
        }
    }

    #[test]
    fn sql_rendering_uses_symbolic_names() {
        let e = engine();
        let sql = e.sql("//V->NP").unwrap();
        assert!(sql.contains("= 'V'"), "{sql}");
        assert!(sql.contains("= 'NP'"), "{sql}");
    }

    #[test]
    fn explain_shows_index_probes() {
        let e = engine();
        let plan = e.explain("//V->NP").unwrap();
        assert!(plan.contains("index"), "{plan}");
    }

    #[test]
    fn unsupported_features_error_cleanly() {
        let e = engine();
        assert!(matches!(
            e.count("//VP/_[last()]"),
            Err(EngineError::Unsupported(_))
        ));
        assert!(matches!(e.count("//VP["), Err(EngineError::Syntax(_))));
        // count() thresholds beyond existence need the walker.
        assert!(matches!(
            e.count("//NP[count(//Det)>2]"),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn function_library_results() {
        let e = engine();
        // "dog" contains "og"; nothing else does.
        assert_eq!(e.count("//_[contains(@lex,'og')]").unwrap(), 1);
        // "saw" starts with "s".
        assert_eq!(e.count("//_[starts-with(@lex,s)]").unwrap(), 1);
        // Three-letter terminals: saw, the, old, man, dog.
        assert_eq!(e.count("//_[string-length(@lex)=3]").unwrap(), 5);
        // count(...)>0 is existence: NPs containing a Det.
        assert_eq!(e.count("//NP[count(//Det)>0]").unwrap(), 3);
        assert_eq!(e.count("//NP[count(//Det)=0]").unwrap(), 1);
    }

    #[test]
    fn function_library_sql_uses_in_sets() {
        let e = engine();
        let sql = e.sql("//_[contains(@lex,'og')]").unwrap();
        assert!(sql.contains(" IN ("), "{sql}");
        assert!(sql.contains("'dog'"), "{sql}");
        // Unsatisfiable set: falls back to the impossible condition.
        let sql = e.sql("//_[contains(@lex,'zzz')]").unwrap();
        assert!(sql.contains("left < 0"), "{sql}");
        // Negation goes through NOT EXISTS.
        let sql = e.sql("//_[not(contains(@lex,'og'))]").unwrap();
        assert!(sql.contains("NOT EXISTS"), "{sql}");
    }

    #[test]
    fn syntactic_join_order_gives_same_answers() {
        let corpus = parse_str(FIG1).unwrap();
        let greedy = Engine::build(&corpus);
        let syntactic = Engine::with_config(
            &corpus,
            PlannerConfig {
                order: rel::JoinOrder::Syntactic,
                ..Default::default()
            },
        );
        for q in ["//V->NP", "//VP{/NP$}", "//S[//NP/PP]", "//NP[not(//Det)]"] {
            assert_eq!(greedy.query(q).unwrap(), syntactic.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn multi_tree_tids() {
        let corpus = parse_str(&format!("{FIG1}\n{FIG1}\n{FIG1}")).unwrap();
        let e = Engine::build(&corpus);
        let got = e.query("//V->NP").unwrap();
        assert_eq!(got.len(), 6);
        for tid in 0..3u32 {
            assert_eq!(got.iter().filter(|(t, _)| *t == tid).count(), 2);
        }
    }

    #[test]
    fn exists_matches_nonempty_query() {
        let e = engine();
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//_[@lex=saw]"] {
            assert!(e.exists(q).unwrap(), "{q}");
        }
        for q in ["//ZZZ", "//_[@lex=zzz]", "//NP/ZZZ"] {
            assert!(!e.exists(q).unwrap(), "{q}");
        }
        assert!(e.exists("//VP[").is_err());
    }

    #[test]
    fn matches_streams_the_full_set_in_some_order() {
        let corpus = parse_str(&format!("{FIG1}\n{FIG1}")).unwrap();
        let e = Engine::build(&corpus);
        for q in ["//NP", "//V->NP", "//VP{//NP$}"] {
            let mut streamed: Vec<(u32, NodeId)> = e.matches(q).unwrap().collect();
            streamed.sort_unstable();
            assert_eq!(streamed, e.query(q).unwrap(), "{q}");
        }
        // Pulling one match does not require the rest.
        assert!(e.matches("//NP").unwrap().next().is_some());
        assert!(e.matches("//ZZZ").unwrap().next().is_none());
    }

    #[test]
    fn query_limit_is_a_prefix_slice() {
        // 20 trees so the chunked evaluation crosses range boundaries.
        let src: String = std::iter::repeat_n(FIG1, 20).collect::<Vec<_>>().join("\n");
        let corpus = parse_str(&src).unwrap();
        let e = Engine::build(&corpus);
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//ZZZ"] {
            let full = e.query(q).unwrap();
            for (offset, limit) in [
                (0, 0),
                (0, 1),
                (0, 5),
                (3, 4),
                (7, 100),
                (full.len(), 3),
                (full.len() + 10, 3),
                (0, usize::MAX),
            ] {
                let want: Vec<(u32, NodeId)> =
                    full.iter().skip(offset).take(limit).copied().collect();
                assert_eq!(
                    e.query_limit(q, offset, limit).unwrap(),
                    want,
                    "{q} offset {offset} limit {limit}"
                );
            }
        }
    }

    #[test]
    fn query_limit_goals_agree_and_push_ranges_into_the_index() {
        let src: String = std::iter::repeat_n(FIG1, 30).collect::<Vec<_>>().join("\n");
        let corpus = parse_str(&src).unwrap();
        let e = Engine::build(&corpus);
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//_", "//ZZZ"] {
            let ast = lpath_syntax::parse(q).unwrap();
            let full = e.query(q).unwrap();
            for (offset, limit) in [(0, 1), (0, 10), (3, 4), (full.len(), 2), (0, usize::MAX)] {
                let want: Vec<(u32, NodeId)> =
                    full.iter().skip(offset).take(limit).copied().collect();
                for goal in [
                    OptGoal::AllRows,
                    OptGoal::FirstRows(offset.saturating_add(limit)),
                    OptGoal::FirstRows(1),
                ] {
                    assert_eq!(
                        e.query_limit_with(&ast, offset, limit, goal).unwrap(),
                        want,
                        "{q} offset {offset} limit {limit} goal {goal:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tid_bounds_become_index_bounds_on_name_anchored_plans() {
        let e = engine();
        let ast = lpath_syntax::parse("//NP").unwrap();
        let cq = e.translate(&ast).unwrap();
        let mut plan = rel::plan(
            &e.db,
            &cq,
            &PlannerConfig {
                goal: OptGoal::FirstRows(1),
                ..Default::default()
            },
        );
        e.push_tid_range(&mut plan, 0, 1, true);
        // The clustered index is keyed (name, tid, …): the bounds must
        // have landed on the index probe, not the residual.
        let rel::AccessPath::IndexRange { lo, hi, .. } = &plan.steps[0].access else {
            panic!("expected an index probe: {plan}");
        };
        assert!(lo.is_some() && hi.is_some(), "{plan}");
        assert_eq!(plan.steps[0].residual.len(), 0, "{plan}");
        // The legacy (AllRows) path keeps bounds as residual filters.
        let cq = e.translate(&ast).unwrap();
        let mut plan = rel::plan(&e.db, &cq, &PlannerConfig::default());
        let residual_before = plan.steps[0].residual.len();
        e.push_tid_range(&mut plan, 0, 1, false);
        assert_eq!(plan.steps[0].residual.len(), residual_before + 2);
    }

    #[test]
    fn adaptive_spans_cover_dense_and_sparse_in_one_round() {
        // Dense: plenty of matches per tree — the span stays small.
        assert!(initial_span(10, 1_000, 100) <= 4);
        // Sparse: few matches corpus-wide — the span covers most of
        // the corpus at once.
        assert!(initial_span(10, 2, 100) >= 100);
        // Nothing expected at all: one round over everything.
        assert_eq!(initial_span(10, 0, 100), 100);
        assert_eq!(initial_span(5, 7, 0), 1);
        // Next rounds extrapolate the observed density...
        assert!(next_span(5, 10, 10, 1_000) >= 10);
        // ...and a dry round finishes the corpus.
        assert_eq!(next_span(0, 10, 10, 1_000), 990);
    }

    #[test]
    fn count_avoids_materialization_but_agrees() {
        let e = engine();
        for q in ["//NP", "//V->NP", "//VP{//NP$}", "//ZZZ", "//_[@lex]"] {
            assert_eq!(e.count(q).unwrap(), e.query(q).unwrap().len(), "{q}");
        }
    }
}
