//! The LPath query engine: corpus → labeled relation → indexed
//! relational evaluation (paper §4–5).
//!
//! [`Engine::build`] labels every tree (Definition 4.1), loads element
//! and attribute rows into the node relation `{tid, left, right, depth,
//! id, pid, name, value}`, clusters it by `{name, tid, left, right,
//! depth, id, pid}` and builds the secondary indexes of §5. Queries are
//! parsed, translated to conjunctive SQL, planned and executed
//! in-process.

use lpath_check::CheckReport;
use lpath_model::{label_tree, Corpus, Interner, NodeId};
use lpath_obs::{Recorder, Span};
use lpath_relstore::{
    self as rel, wire, Cmp, ColRef, Cond, Database, OptGoal, PlannerConfig, Schema, Table, TableId,
    Value, NULL,
};
use lpath_syntax::{parse, Axis, NodeTest, Path, SyntaxError};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::compile::NCol;
use crate::translate::{NodeCols, Translator, Unsupported};

/// Everything that can go wrong answering a query.
#[derive(Debug)]
pub enum EngineError {
    /// The query text does not parse.
    Syntax(SyntaxError),
    /// The query parses but has no relational translation.
    Unsupported(Unsupported),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Syntax(e) => e.fmt(f),
            EngineError::Unsupported(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Syntax(e)
    }
}

impl From<Unsupported> for EngineError {
    fn from(e: Unsupported) -> Self {
        EngineError::Unsupported(e)
    }
}

/// The relational LPath engine over one corpus.
pub struct Engine {
    db: Database,
    node: TableId,
    cols: NodeCols,
    interner: Interner,
    planner: PlannerConfig,
    ntrees: usize,
    /// Exact element-occurrence histogram per name symbol, gathered
    /// during the build pass: corpus total plus a sparse per-tree
    /// breakdown `(tid, count)` sorted by tree id (only trees that
    /// contain the symbol appear). Drives [`Engine::refine_estimate`]
    /// and the density-aware chunk schedule.
    tag_density: HashMap<u32, TagDensity>,
}

/// Occurrence histogram of one element name: `(corpus total,
/// per-tree counts sorted by tree id)`.
type TagDensity = (u64, Vec<(u32, u32)>);

impl Engine {
    /// Label, load, cluster, index and analyze `corpus`.
    pub fn build(corpus: &Corpus) -> Self {
        Self::with_config(corpus, PlannerConfig::default())
    }

    /// Like [`Engine::build`] with an explicit planner configuration
    /// (used by the join-order ablation).
    pub fn with_config(corpus: &Corpus, planner: PlannerConfig) -> Self {
        let schema = Schema::new(&[
            "tid", "left", "right", "depth", "id", "pid", "name", "value",
        ]);
        let mut table = Table::new(schema);
        let mut row_count = 0usize;
        for t in corpus.trees() {
            row_count += t.len();
        }
        table.reserve(row_count);
        let mut tag_density: HashMap<u32, TagDensity> = HashMap::new();
        for (tid, tree) in corpus.trees().iter().enumerate() {
            let labels = label_tree(tree);
            for id in tree.preorder() {
                let l = &labels[id.index()];
                let node = tree.node(id);
                let d = tag_density.entry(node.name.raw()).or_default();
                d.0 += 1;
                match d.1.last_mut() {
                    Some(e) if e.0 == tid as u32 => e.1 += 1,
                    _ => d.1.push((tid as u32, 1)),
                }
                let base = [
                    tid as Value,
                    l.left,
                    l.right,
                    l.depth,
                    l.id,
                    l.pid,
                    node.name.raw(),
                    NULL,
                ];
                table.push_row(&base);
                for &(aname, aval) in &node.attrs {
                    let mut row = base;
                    row[6] = aname.raw();
                    row[7] = aval.raw();
                    table.push_row(&row);
                }
            }
        }

        let mut db = Database::new();
        // Clustered order, exactly the paper's.
        let cluster: Vec<rel::ColId> = ["name", "tid", "left", "right", "depth", "id", "pid"]
            .iter()
            .map(|c| table.schema().col_expect(c))
            .collect();
        table.cluster_by(&cluster);
        let node = db.add_table("node", table);
        let cols = NodeCols::resolve(&db, node);

        // The clustered key doubles as the primary access path.
        db.add_index(node, "clustered", cluster);
        // Secondary indexes of §5.
        let c = |n: NCol| cols.col(n);
        db.add_index(
            node,
            "tid_value_id",
            vec![c(NCol::Tid), c(NCol::Value), c(NCol::Id)],
        );
        db.add_index(
            node,
            "value_tid_id",
            vec![c(NCol::Value), c(NCol::Tid), c(NCol::Id)],
        );
        db.add_index(node, "tid_id", vec![c(NCol::Tid), c(NCol::Id)]);
        db.analyze(node, &[c(NCol::Name), c(NCol::Value)]);
        // Per-tree spreads of the same columns: feeds the planner's
        // chunked-anchor penalty (a tag confined to few trees starts
        // streaming sooner than one smeared across the corpus).
        db.analyze_grouped(node, c(NCol::Tid), &[c(NCol::Name), c(NCol::Value)]);

        Engine {
            db,
            node,
            cols,
            interner: corpus.interner().clone(),
            planner,
            ntrees: corpus.trees().len(),
            tag_density,
        }
    }

    /// The underlying database (for inspection and the benchmarks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of rows in the node relation (elements + attributes).
    pub fn relation_size(&self) -> usize {
        self.db.table(self.node).num_rows()
    }

    fn translator(&self) -> Translator<'_> {
        Translator::new(self.node, self.cols, &self.interner)
    }

    /// Translate a parsed query to the logical conjunctive form.
    pub fn translate(&self, query: &Path) -> Result<rel::ConjQuery, Unsupported> {
        self.translator().translate(query)
    }

    /// Statically analyze a query against this engine's corpus
    /// vocabulary: spanned diagnostics plus the emptiness verdict (see
    /// [`lpath_check`]). Never errors — analysis needs only the AST.
    pub fn check_ast(&self, ast: &Path) -> CheckReport {
        lpath_check::check_with(ast, |sym| self.interner.get(sym).is_some())
    }

    /// [`Engine::check_ast`] from query text (spans index into it).
    pub fn check(&self, query: &str) -> Result<CheckReport, EngineError> {
        Ok(self.check_ast(&parse(query)?))
    }

    /// The SQL statement the paper's engine would send to its RDBMS,
    /// with symbolic names resolved for readability.
    pub fn sql(&self, query: &str) -> Result<String, EngineError> {
        let ast = parse(query)?;
        self.sql_ast(&ast)
    }

    /// Like [`Engine::sql`] for an already-parsed query (callers that
    /// keep the AST — e.g. a plan cache — avoid re-parsing and
    /// re-translating).
    pub fn sql_ast(&self, ast: &Path) -> Result<String, EngineError> {
        let cq = self.translate(ast)?;
        let name_col = self.cols.col(NCol::Name);
        let value_col = self.cols.col(NCol::Value);
        Ok(cq.to_sql_with(&self.db, &|r: ColRef, v: Value| {
            if (r.col == name_col || r.col == value_col) && v != NULL {
                self.interner
                    .iter()
                    .find(|(s, _)| s.raw() == v)
                    .map(|(_, text)| format!("'{text}'"))
            } else {
                None
            }
        }))
    }

    /// An EXPLAIN-style rendering of the physical plan, followed by a
    /// `LINT:` section when the static analyzer has findings (a
    /// proven-empty query shows the constant-empty plan it will run).
    pub fn explain(&self, query: &str) -> Result<String, EngineError> {
        let ast = parse(query)?;
        let cq = self.translate(&ast)?;
        let report = self.check_ast(&ast);
        let plan = if report.statically_empty {
            rel::Plan::constant_empty()
        } else {
            rel::plan(&self.db, &cq, &self.planner)
        };
        let mut out = plan.to_string();
        if !report.is_clean() {
            out.push_str("LINT:\n");
            out.push_str(&report.render(query));
        }
        Ok(out)
    }

    /// EXPLAIN ANALYZE: execute `query` under full instrumentation and
    /// report the plan annotated with *observed* behavior — per-step
    /// actual rows, index probes, residual evaluations and attributed
    /// wall-clock time — alongside the planner's estimates, plus stage
    /// spans for parse / plan / execute and the plan-level
    /// [`ExplainAnalyze::estimate_error`] ratio.
    pub fn explain_analyze(&self, query: &str) -> Result<ExplainAnalyze, EngineError> {
        let stages = StageLog::default();
        let span = Span::enter("parse", &stages);
        let ast = parse(query)?;
        span.finish();
        let span = Span::enter("plan", &stages);
        let plan = self.plan_ast(&ast)?;
        span.finish();
        let span = Span::enter("execute", &stages);
        let (rows, obs, step_nanos) = rel::execute_analyzed(&plan, &self.db);
        span.finish();
        let nanos_of = |name: &str| stages.take(name);

        // Pair each rendered `step N:` line of the EXPLAIN output with
        // its observed counts; keep the check lines as-is.
        let rendered = plan.to_string();
        let mut steps = Vec::with_capacity(obs.len());
        let mut checks = Vec::new();
        for line in rendered.lines() {
            if line.starts_with("step ") {
                let i = steps.len();
                steps.push(StepReport {
                    text: line.to_string(),
                    probes: obs[i].probes,
                    candidates: obs[i].candidates,
                    residual_evals: obs[i].residual_evals,
                    actual_rows: obs[i].rows_out,
                    nanos: step_nanos[i],
                });
            } else if line.starts_with("check ") {
                checks.push(line.to_string());
            }
        }
        debug_assert_eq!(steps.len(), obs.len());

        let estimated_rows = plan.estimated_result;
        let actual_rows = rows.len();
        // The q-error of the cardinality estimate, +1-smoothed so empty
        // results stay finite: max over both ratio directions, ≥ 1.
        let (e, a) = (estimated_rows as f64 + 1.0, actual_rows as f64 + 1.0);
        let estimate_error = (e / a).max(a / e);
        Ok(ExplainAnalyze {
            steps,
            checks,
            parse_nanos: nanos_of("parse"),
            plan_nanos: nanos_of("plan"),
            execute_nanos: nanos_of("execute"),
            estimated_rows,
            actual_rows,
            estimate_error,
        })
    }

    /// Evaluate a query string, returning `(tree index, node)` matches
    /// sorted in document order.
    pub fn query(&self, query: &str) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let ast = parse(query)?;
        self.query_ast(&ast)
    }

    /// Evaluate a parsed query.
    pub fn query_ast(&self, ast: &Path) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let plan = self.plan_ast(ast)?;
        let mut out = rows_to_matches(rel::execute(&plan, &self.db));
        out.sort_unstable();
        Ok(out)
    }

    /// Translate and plan a parsed query. Runs the static analyzer
    /// *after* translation (so unsupported queries keep their error)
    /// and replaces proven-empty queries with the constant-empty plan:
    /// no index probes, no scans, a cursor born exhausted.
    fn plan_ast(&self, ast: &Path) -> Result<rel::Plan, EngineError> {
        let cq = self.translate(ast)?;
        if self.check_ast(ast).statically_empty {
            return Ok(rel::Plan::constant_empty());
        }
        let mut plan = rel::plan(&self.db, &cq, &self.planner);
        self.refine_estimate(ast, &mut plan);
        Ok(plan)
    }

    /// Evaluate a batch of parsed queries with **common-subplan
    /// sharing**: members whose plans anchor on the same table through
    /// the same constant-keyed access path (see
    /// [`lpath_relstore::anchor_key`]) ride one shared enumeration of
    /// the anchor's candidate rows, each candidate fanning out to every
    /// member's residual filter and join tail. Members with unique
    /// anchors — and members whose plans cannot share (constant-empty,
    /// binding-dependent anchors) — run exactly the solo
    /// [`Engine::query_ast`] path.
    ///
    /// Per-member results are byte-identical to [`Engine::query_ast`]
    /// on the same query: same rows, same document order. Errors stay
    /// per-member — one unsupported query does not poison the batch.
    pub fn eval_batch_shared(&self, asts: &[&Path]) -> (Vec<QueryResult>, BatchStats) {
        let mut stats = BatchStats::default();
        let planned: Vec<Result<rel::Plan, EngineError>> =
            asts.iter().map(|ast| self.plan_ast(ast)).collect();
        let mut out: Vec<Option<Vec<(u32, NodeId)>>> = Vec::new();
        out.resize_with(asts.len(), || None);

        // Shareable members, in input order, with their batch position.
        let ok: Vec<(usize, &rel::Plan)> = planned
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().ok().map(|plan| (i, plan)))
            .collect();
        // Whole-plan dedup first: members whose plans are structurally
        // identical (exact fingerprint — distinct surface queries
        // routinely compile to one plan) execute once; the duplicates
        // copy the canonical member's rows below.
        let mut canon: HashMap<String, usize> = HashMap::new();
        let mut dup_of: Vec<Option<usize>> = vec![None; ok.len()];
        for (j, &(_, plan)) in ok.iter().enumerate() {
            match canon.entry(rel::plan_fingerprint(plan)) {
                Entry::Occupied(e) => dup_of[j] = Some(*e.get()),
                Entry::Vacant(e) => {
                    e.insert(j);
                }
            }
        }
        let uniq: Vec<usize> = (0..ok.len()).filter(|&j| dup_of[j].is_none()).collect();
        let plans: Vec<&rel::Plan> = uniq.iter().map(|&j| ok[j].1).collect();
        let mut grouped = vec![false; plans.len()];
        for members in rel::group_by_anchor(&plans).values() {
            if members.len() < 2 {
                continue;
            }
            let group: Vec<&rel::Plan> = members.iter().map(|&j| plans[j]).collect();
            let (rows, s) = rel::execute_shared(&group, &self.db);
            stats.shared_scans += members.len() as u64;
            stats.residual_evals += s.residual_evals;
            for (&j, rows) in members.iter().zip(rows) {
                grouped[j] = true;
                let mut m = rows_to_matches(rows);
                m.sort_unstable();
                out[ok[uniq[j]].0] = Some(m);
            }
        }
        // Everyone else — unique anchors, unshareable plans — solo.
        for (j, &u) in uniq.iter().enumerate() {
            if grouped[j] {
                continue;
            }
            let (i, plan) = ok[u];
            let mut m = rows_to_matches(rel::execute(plan, &self.db));
            m.sort_unstable();
            out[i] = Some(m);
        }
        // Duplicates share their canonical member's *entire* execution
        // (anchor scan included), so they count as shared scans too.
        for (j, d) in dup_of.iter().enumerate() {
            if let Some(c) = d {
                stats.shared_scans += 1;
                let rows = out[ok[*c].0].clone().expect("canonical member executed");
                out[ok[j].0] = Some(rows);
            }
        }

        let results = planned
            .into_iter()
            .zip(out)
            .map(|(p, o)| p.map(|_| o.expect("every planned member executed")))
            .collect();
        (results, stats)
    }

    /// Result size — the measure reported in Figure 6(c). Counts
    /// through the streaming cursor: no match-set materialization, no
    /// sort.
    pub fn count(&self, query: &str) -> Result<usize, EngineError> {
        let ast = parse(query)?;
        self.count_ast(&ast)
    }

    /// Result size of an already-parsed query.
    pub fn count_ast(&self, ast: &Path) -> Result<usize, EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(rel::count(&plan, &self.db))
    }

    /// Resume (or begin) a **count** of the query's matches: tally up
    /// to `budget` further matches and return the count found this
    /// call plus the checkpoint to continue from, or `None` once the
    /// count is known complete. Counting pulls the same streaming
    /// cursor as enumeration but materializes no output rows —
    /// dedup-free plans (see [`lpath_relstore::ConjQuery::dedup_free`])
    /// skip the distinct watermark sets entirely, and others carry
    /// only the watermarks in the checkpoint. Summing the counts of
    /// successive calls equals [`Engine::count_ast`], whatever the
    /// per-call budgets.
    pub fn count_resume(
        &self,
        ast: &Path,
        checkpoint: Option<rel::CursorCheckpoint>,
        budget: usize,
    ) -> Result<(u64, Option<rel::CursorCheckpoint>), EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(rel::count_resume(&plan, &self.db, checkpoint, budget))
    }

    /// Decode a count checkpoint (a bare
    /// [`lpath_relstore::CursorCheckpoint`]) for `ast` from untrusted
    /// bytes. The plan is rebuilt deterministically — exactly as
    /// [`Engine::count_resume`] builds it — and every structural claim
    /// the bytes make is validated against it; any mismatch is a
    /// [`wire::WireError`], never a panic.
    pub fn decode_count_checkpoint(
        &self,
        ast: &Path,
        r: &mut wire::Reader<'_>,
    ) -> Result<rel::CursorCheckpoint, wire::WireError> {
        let plan = self
            .plan_ast(ast)
            .map_err(|_| wire::WireError::Malformed("query has no relational translation"))?;
        rel::CursorCheckpoint::decode(r, &plan, &self.db)
    }

    /// Does the query match anywhere? Stops at the first witness —
    /// Boolean evaluation is far cheaper than enumeration
    /// (Gottlob–Koch–Schulz), and the cursor exploits exactly that gap.
    pub fn exists(&self, query: &str) -> Result<bool, EngineError> {
        let ast = parse(query)?;
        self.exists_ast(&ast)
    }

    /// [`Engine::exists`] for an already-parsed query.
    pub fn exists_ast(&self, ast: &Path) -> Result<bool, EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(rel::exists(&plan, &self.db))
    }

    /// A streaming iterator over the query's matches, yielded in
    /// **pipeline order** (the order the index-nested-loop join
    /// produces them) — *not* document order. Dropping the iterator
    /// abandons the remaining enumeration; use [`Engine::query`] when
    /// the sorted full set is wanted, [`Engine::query_limit`] for
    /// document-ordered pages.
    pub fn matches(&self, query: &str) -> Result<Matches<'_>, EngineError> {
        let ast = parse(query)?;
        self.matches_ast(&ast)
    }

    /// [`Engine::matches`] for an already-parsed query.
    pub fn matches_ast(&self, ast: &Path) -> Result<Matches<'_>, EngineError> {
        let plan = self.plan_ast(ast)?;
        Ok(Matches {
            cursor: rel::Cursor::owning(plan, &self.db),
        })
    }

    /// The `[offset, offset + limit)` slice of [`Engine::query`]'s
    /// document-ordered result, computed with early termination:
    /// the corpus is evaluated in tree-id ranges, each range's matches
    /// sorted and appended — ranges partition the corpus, so
    /// concatenation *is* document order — until the page is covered.
    ///
    /// The limit is pushed all the way down: the plan is re-planned
    /// with [`OptGoal::FirstRows`] (startup-cost join order), the
    /// initial range is sized from the planner's selectivity estimate
    /// so the expected number of rounds is ~1 for dense *and* sparse
    /// queries, and the range bounds become **index range bounds** on
    /// the first join step whenever its access path's next key column
    /// is `tid` — each round then touches only its slice of the
    /// anchor's candidates instead of rescanning them all.
    pub fn query_limit(
        &self,
        query: &str,
        offset: usize,
        limit: usize,
    ) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let ast = parse(query)?;
        self.query_limit_ast(&ast, offset, limit)
    }

    /// [`Engine::query_limit`] for an already-parsed query. Runs on
    /// the resumable executor ([`Engine::query_resume`]) — a one-shot
    /// page is simply a resumable enumeration whose checkpoint is
    /// dropped.
    pub fn query_limit_ast(
        &self,
        ast: &Path,
        offset: usize,
        limit: usize,
    ) -> Result<Vec<(u32, NodeId)>, EngineError> {
        if limit == 0 {
            // Untranslatable queries still error; translatable ones
            // skip all evaluation for the empty page.
            self.translate(ast)?;
            return Ok(Vec::new());
        }
        let need = offset.saturating_add(limit);
        let (mut rows, _) = self.query_resume(ast, None, need)?;
        Ok(rows.split_off(offset.min(rows.len())))
    }

    /// Resume (or begin) a **document-ordered** enumeration: return up
    /// to `limit` further matches after `checkpoint` — from the start
    /// when `None` — plus the checkpoint to continue from, or `None`
    /// once the enumeration is known complete. Concatenating the
    /// chunks of successive calls is byte-identical to
    /// [`Engine::query_ast`], whatever the per-call limits; no tree is
    /// re-evaluated and no match re-enumerated across calls.
    ///
    /// Two execution strategies, chosen at the first call and carried
    /// in the checkpoint:
    ///
    /// * **suspended pipeline** — when the plan's anchor probes an
    ///   index keyed `(…, tid, …)` right after its equality prefix,
    ///   candidate rows (and hence matches — every alias of a match
    ///   shares the anchor's tree) arrive in non-decreasing tree-id
    ///   order. One [`lpath_relstore::Cursor`] then serves every page:
    ///   trees retire monotonically, finished trees are sorted and
    ///   emitted, and suspension captures the cursor mid-probe via
    ///   [`lpath_relstore::Cursor::suspend`] together with the
    ///   in-flight tree's partial match buffer.
    /// * **chunked** — otherwise, the adaptive tree-id-range schedule
    ///   of [`Engine::query_limit`], with the next unscanned tree id
    ///   carried in the checkpoint so deeper pages continue where the
    ///   last one stopped instead of rescanning from tree 0.
    ///
    /// Either way, rows enumerated beyond `limit` (the tail of a
    /// sorted chunk or tree) ride along in the checkpoint and are
    /// served first on the next call.
    ///
    /// A checkpoint is only meaningful against the engine (and query)
    /// it came from; callers that cache checkpoints must key them
    /// accordingly.
    pub fn query_resume(
        &self,
        ast: &Path,
        checkpoint: Option<QueryCheckpoint>,
        limit: usize,
    ) -> Result<Resumed, EngineError> {
        let ckpt = match checkpoint {
            Some(c) => c,
            None => {
                let cq = self.translate(ast)?;
                let plan_k = limit.clamp(1, usize::MAX / 2);
                let cfg = PlannerConfig {
                    order: self.planner.order,
                    goal: OptGoal::FirstRows(plan_k),
                };
                let mut plan = if self.check_ast(ast).statically_empty {
                    rel::Plan::constant_empty()
                } else {
                    rel::plan(&self.db, &cq, &cfg)
                };
                self.refine_estimate(ast, &mut plan);
                let state = if self.tid_ordered_anchor(&plan) {
                    let cursor = rel::Cursor::new(&plan, &self.db).suspend();
                    ResumeState::Stream {
                        plan: Box::new(plan),
                        cursor,
                        buf: Vec::new(),
                    }
                } else {
                    ResumeState::Chunked {
                        plan: Box::new(plan),
                        next_tree: 0,
                    }
                };
                QueryCheckpoint {
                    pending: Vec::new(),
                    plan_k,
                    state,
                }
            }
        };
        let plan_k = ckpt.plan_k;
        // Rows already enumerated by an earlier call are served first;
        // when they cover the whole page, no strategy work runs at
        // all (no re-plan, no cursor resume).
        let mut ready = ckpt.pending;
        let (state, exhausted) = if ready.len() >= limit {
            let exhausted = matches!(ckpt.state, ResumeState::Drained);
            (ckpt.state, exhausted)
        } else {
            match ckpt.state {
                ResumeState::Drained => (ResumeState::Drained, true),
                ResumeState::Stream { plan, cursor, buf } => {
                    self.advance_stream(plan, cursor, buf, &mut ready, limit)
                }
                ResumeState::Chunked { plan, next_tree } => {
                    self.advance_chunked(ast, plan, next_tree, &mut ready, limit)
                }
            }
        };
        let out: Vec<(u32, NodeId)> = ready.drain(..limit.min(ready.len())).collect();
        let next = if exhausted && ready.is_empty() {
            None
        } else {
            Some(QueryCheckpoint {
                pending: ready,
                plan_k,
                state: if exhausted {
                    ResumeState::Drained
                } else {
                    state
                },
            })
        };
        Ok((out, next))
    }

    /// Pull the suspended pipeline until `ready` covers `limit`,
    /// retiring (sorting and appending) each tree as the cursor's
    /// anchor moves past it. Returns the successor state and whether
    /// the enumeration completed.
    fn advance_stream(
        &self,
        plan: Box<rel::Plan>,
        cursor: rel::CursorCheckpoint,
        mut buf: Vec<(u32, NodeId)>,
        ready: &mut Vec<(u32, NodeId)>,
        limit: usize,
    ) -> (ResumeState, bool) {
        let mut live = rel::Cursor::resume(&plan, &self.db, cursor);
        let mut exhausted = false;
        while ready.len() < limit {
            match live.next() {
                Some(row) => {
                    debug_assert_eq!(row.len(), 2);
                    let m = (row[0], NodeId(row[1] - 2));
                    if let Some(&(tree, _)) = buf.first() {
                        debug_assert!(m.0 >= tree, "anchor emitted trees out of order");
                        if m.0 != tree {
                            buf.sort_unstable();
                            ready.append(&mut buf);
                        }
                    }
                    buf.push(m);
                }
                None => {
                    buf.sort_unstable();
                    ready.append(&mut buf);
                    exhausted = true;
                    break;
                }
            }
        }
        let state = if exhausted {
            ResumeState::Drained
        } else {
            ResumeState::Stream {
                cursor: live.into_checkpoint(),
                plan,
                buf,
            }
        };
        (state, exhausted)
    }

    /// Evaluate adaptive tree-id chunks starting at `next_tree` until
    /// `ready` covers `limit`, mirroring [`Engine::query_limit_with`]'s
    /// schedule but re-entrant: the plan rides in the checkpoint
    /// (like the stream strategy's, so resumed calls never re-plan)
    /// and the returned state records the next unscanned tree.
    fn advance_chunked(
        &self,
        ast: &Path,
        plan: Box<rel::Plan>,
        next_tree: usize,
        ready: &mut Vec<(u32, NodeId)>,
        limit: usize,
    ) -> (ResumeState, bool) {
        if plan.steps.is_empty() {
            // No join step to push a range onto (cannot happen for
            // translated queries; defensive): evaluate fully, once.
            if next_tree == 0 {
                let mut all = rows_to_matches(rel::execute(&plan, &self.db));
                all.sort_unstable();
                ready.append(&mut all);
            }
            return (
                ResumeState::Chunked {
                    plan,
                    next_tree: self.ntrees,
                },
                true,
            );
        }
        let carried = ready.len();
        let mut lo = next_tree;
        let mut span = self.density_span(ast, limit, next_tree, plan.estimated_result);
        while lo < self.ntrees && ready.len() < limit {
            let hi = lo.saturating_add(span).min(self.ntrees);
            let mut ranged = plan.clone();
            self.push_tid_range(&mut ranged, lo as Value, hi as Value, true);
            let mut chunk = rows_to_matches(rel::execute(&ranged, &self.db));
            chunk.sort_unstable();
            ready.append(&mut chunk);
            lo = hi;
            span = next_span(
                ready.len() - carried,
                lo - next_tree,
                limit.saturating_sub(carried),
                self.ntrees,
            );
        }
        let exhausted = lo >= self.ntrees;
        (
            ResumeState::Chunked {
                plan,
                next_tree: lo,
            },
            exhausted,
        )
    }

    /// Does the streaming cursor emit this plan's matches in
    /// non-decreasing tree-id order? True when the anchor step probes
    /// an index whose key column right after the equality prefix is
    /// `tid` with no pre-existing range bounds: its candidates arrive
    /// in `(tid, …)` clustered order, and the translation's implicit
    /// same-tree equalities give every later alias the anchor's tid.
    fn tid_ordered_anchor(&self, plan: &rel::Plan) -> bool {
        let Some(step) = plan.steps.first() else {
            return false;
        };
        match &step.access {
            rel::AccessPath::IndexRange { index, eq, lo, hi } => {
                lo.is_none()
                    && hi.is_none()
                    && self.db.index(*index).key().get(eq.len()) == Some(&self.cols.col(NCol::Tid))
            }
            rel::AccessPath::FullScan => false,
        }
    }

    /// Decode a [`QueryCheckpoint`] for `ast` from untrusted bytes.
    ///
    /// The strategy's plan is rebuilt here — translate, then plan with
    /// the `FirstRows(k)` goal the token carries — exactly as the
    /// first [`Engine::query_resume`] call built it, so over the same
    /// engine content the resumed execution is byte-identical to one
    /// that never left the process. Every structural claim the token
    /// makes is validated against that rebuilt plan (see
    /// [`lpath_relstore::CursorCheckpoint::decode`]); any mismatch —
    /// truncation, corruption, a token from a different query or
    /// different corpus content — is a [`wire::WireError`], never a
    /// panic.
    pub fn decode_checkpoint(
        &self,
        ast: &Path,
        r: &mut wire::Reader<'_>,
    ) -> Result<QueryCheckpoint, wire::WireError> {
        use wire::WireError::Malformed;
        let plan_k = r.usize()?;
        if plan_k == 0 || plan_k > usize::MAX / 2 {
            return Err(Malformed("plan goal out of range"));
        }
        let pending = decode_rows(r)?;
        let state = match r.u8()? {
            0 => ResumeState::Drained,
            tag @ (1 | 2) => {
                let cq = self
                    .translate(ast)
                    .map_err(|_| Malformed("query has no relational translation"))?;
                let cfg = PlannerConfig {
                    order: self.planner.order,
                    goal: OptGoal::FirstRows(plan_k),
                };
                let mut plan = if self.check_ast(ast).statically_empty {
                    rel::Plan::constant_empty()
                } else {
                    rel::plan(&self.db, &cq, &cfg)
                };
                self.refine_estimate(ast, &mut plan);
                if tag == 1 {
                    if !self.tid_ordered_anchor(&plan) {
                        return Err(Malformed("stream checkpoint for a non-streaming plan"));
                    }
                    let cursor = rel::CursorCheckpoint::decode(r, &plan, &self.db)?;
                    let buf = decode_rows(r)?;
                    ResumeState::Stream {
                        plan: Box::new(plan),
                        cursor,
                        buf,
                    }
                } else {
                    if self.tid_ordered_anchor(&plan) {
                        return Err(Malformed("chunked checkpoint for a streaming plan"));
                    }
                    let next_tree = r.usize()?;
                    ResumeState::Chunked {
                        plan: Box::new(plan),
                        next_tree: next_tree.min(self.ntrees),
                    }
                }
            }
            _ => return Err(Malformed("resume strategy tag")),
        };
        Ok(QueryCheckpoint {
            pending,
            plan_k,
            state,
        })
    }

    /// [`Engine::query_limit_ast`] with an explicit optimization goal —
    /// the A/B switch of the `page` benchmark. [`OptGoal::AllRows`]
    /// reproduces the pre-limit-aware behavior exactly (the plan the
    /// engine uses for full enumeration, a fixed initial span of 8
    /// trees doubling per round, range bounds as residual filters);
    /// [`OptGoal::FirstRows`] is the limit-aware path described on
    /// [`Engine::query_limit`]. Both return identical pages.
    pub fn query_limit_with(
        &self,
        ast: &Path,
        offset: usize,
        limit: usize,
        goal: OptGoal,
    ) -> Result<Vec<(u32, NodeId)>, EngineError> {
        let cfg = PlannerConfig {
            order: self.planner.order,
            goal,
        };
        let cq = self.translate(ast)?;
        if limit == 0 {
            // Untranslatable queries still error above; translatable
            // ones skip planning for the empty page.
            return Ok(Vec::new());
        }
        if self.check_ast(ast).statically_empty {
            return Ok(Vec::new());
        }
        let mut plan = rel::plan(&self.db, &cq, &cfg);
        let adaptive = !matches!(goal, OptGoal::AllRows);
        if adaptive {
            self.refine_estimate(ast, &mut plan);
        }
        let need = offset.saturating_add(limit);
        if plan.steps.is_empty() {
            // No join step to push the range filter onto (cannot
            // happen for translated queries; defensive).
            let mut all = rows_to_matches(rel::execute(&plan, &self.db));
            all.sort_unstable();
            all.truncate(need);
            return Ok(all.split_off(offset.min(all.len())));
        }
        let mut out: Vec<(u32, NodeId)> = Vec::new();
        let mut lo = 0usize;
        let mut span = if adaptive {
            self.density_span(ast, need, 0, plan.estimated_result)
        } else {
            8
        };
        while lo < self.ntrees && out.len() < need {
            let hi = lo.saturating_add(span).min(self.ntrees);
            let mut ranged = plan.clone();
            self.push_tid_range(&mut ranged, lo as Value, hi as Value, adaptive);
            let mut chunk = rows_to_matches(rel::execute(&ranged, &self.db));
            chunk.sort_unstable();
            out.extend(chunk);
            lo = hi;
            span = if adaptive {
                next_span(out.len(), lo, need, self.ntrees)
            } else {
                span.saturating_mul(2)
            };
        }
        out.truncate(need);
        Ok(out.split_off(offset.min(out.len())))
    }

    /// Constrain the plan's first join step to anchor rows with
    /// `lo <= tid < hi`. When `into_index` and the step probes an index
    /// whose key column right after the equality prefix is `tid` (the
    /// clustered `name`-led index, `value_tid_id`, …), the bounds become
    /// index range bounds — the probe itself skips every other tree.
    /// Otherwise (full scans, exhausted keys, pre-existing bounds) they
    /// fall back to residual filters, which is always correct.
    fn push_tid_range(&self, plan: &mut rel::Plan, lo: Value, hi: Value, into_index: bool) {
        let tid = self.cols.col(NCol::Tid);
        let step = &mut plan.steps[0];
        if into_index {
            if let rel::AccessPath::IndexRange {
                index,
                eq,
                lo: plo,
                hi: phi,
            } = &mut step.access
            {
                if plo.is_none()
                    && phi.is_none()
                    && self.db.index(*index).key().get(eq.len()) == Some(&tid)
                {
                    *plo = Some((true, rel::Operand::Const(lo)));
                    *phi = Some((false, rel::Operand::Const(hi)));
                    return;
                }
            }
        }
        let anchor = ColRef::new(step.alias, tid);
        step.residual.push(Cond::against_const(anchor, Cmp::Ge, lo));
        step.residual.push(Cond::against_const(anchor, Cmp::Lt, hi));
    }

    /// Sharpen the planner's result-cardinality estimate with the
    /// build-time occurrence histogram: every match binds each step of
    /// the main path (and its scope continuation) inside one tree, so
    /// the scarcest step symbol's **exact** corpus total caps how many
    /// matches can exist — often far below the planner's per-column
    /// frequency extrapolation for multi-step queries.
    pub fn refine_estimate(&self, ast: &Path, plan: &mut rel::Plan) {
        if let Some(&(total, _)) = self.scarcest_density(ast) {
            plan.estimated_result = plan.estimated_result.min(total as usize);
        }
    }

    /// Exact number of elements named `tag` in the corpus, from the
    /// build-time histogram (0 for symbols that never occur).
    pub fn tag_total(&self, tag: &str) -> u64 {
        self.interner
            .get(tag)
            .and_then(|s| self.tag_density.get(&s.raw()))
            .map_or(0, |d| d.0)
    }

    /// The occurrence histogram of the query's scarcest element-name
    /// symbol, or `None` when the query names no concrete element tag
    /// (wildcards and attribute tests say nothing about element
    /// density).
    fn scarcest_density(&self, ast: &Path) -> Option<&TagDensity> {
        static EMPTY: TagDensity = (0, Vec::new());
        let mut best: Option<&TagDensity> = None;
        let mut path = Some(ast);
        while let Some(p) = path {
            for step in &p.steps {
                if step.axis == Axis::Attribute {
                    continue;
                }
                let NodeTest::Tag(tag) = &step.test else {
                    continue;
                };
                let d = self
                    .interner
                    .get(tag)
                    .and_then(|s| self.tag_density.get(&s.raw()))
                    .unwrap_or(&EMPTY);
                if best.is_none_or(|b| d.0 < b.0) {
                    best = Some(d);
                }
            }
            path = p.scope.as_deref();
        }
        best
    }

    /// Density-aware first span of the adaptive chunk schedule: the
    /// shortest tree prefix (counting from `start`) whose occurrence
    /// count of the query's scarcest symbol reaches `need`, doubled
    /// for slack. A tree without the symbol cannot hold a match, so
    /// the histogram walk skips sparse regions that the uniform
    /// extrapolation of [`initial_span`] would schedule round after
    /// round; queries with no tag information fall back to it.
    fn density_span(&self, ast: &Path, need: usize, start: usize, estimated: usize) -> usize {
        let Some(&(total, ref per_tree)) = self.scarcest_density(ast) else {
            return initial_span(need, estimated, self.ntrees);
        };
        if total == 0 {
            // The symbol never occurs: prove emptiness in one round.
            return self.ntrees.max(1);
        }
        let mut acc = 0u64;
        for &(tid, n) in per_tree {
            if (tid as usize) < start {
                continue;
            }
            acc += u64::from(n);
            if acc >= need as u64 {
                let trees = (tid as usize + 1).saturating_sub(start);
                return trees.saturating_mul(2).clamp(1, self.ntrees.max(1));
            }
        }
        // Fewer occurrences remain than `need`: finish in one round.
        self.ntrees.max(1)
    }
}

/// A stage-span sink for [`Engine::explain_analyze`]: collects the
/// completed parse / plan / execute spans by name.
#[derive(Default)]
struct StageLog(std::sync::Mutex<Vec<(&'static str, u64)>>);

impl StageLog {
    /// The recorded nanoseconds of stage `name` (0 if it never ran).
    fn take(&self, name: &str) -> u64 {
        self.0
            .lock()
            .unwrap()
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, nanos)| nanos)
    }
}

impl Recorder for StageLog {
    fn record(&self, name: &'static str, nanos: u64) {
        self.0.lock().unwrap().push((name, nanos));
    }
}

/// One plan step of an [`ExplainAnalyze`] report: the EXPLAIN line
/// paired with the step's observed execution counts and time.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The `step N: bind …` line of the EXPLAIN rendering.
    pub text: String,
    /// Access-path openings (index probes / scan starts).
    pub probes: u64,
    /// Candidate rows pulled from the access path.
    pub candidates: u64,
    /// Residual / set-filter conditions evaluated.
    pub residual_evals: u64,
    /// Candidates that survived the step's filters.
    pub actual_rows: u64,
    /// Wall-clock nanoseconds attributed to the step.
    pub nanos: u64,
}

/// The result of [`Engine::explain_analyze`]: the plan's EXPLAIN
/// rendering annotated with observed per-step behavior, the
/// parse/plan/execute stage spans, and the estimated-vs-actual result
/// cardinality with its error ratio.
///
/// The [`std::fmt::Display`] impl renders the classic two-line-per-step
/// EXPLAIN ANALYZE form.
#[derive(Clone, Debug)]
pub struct ExplainAnalyze {
    /// Annotated plan steps, in pipeline order.
    pub steps: Vec<StepReport>,
    /// The plan's correlated-subquery check lines, verbatim.
    pub checks: Vec<String>,
    /// Time spent parsing the query text.
    pub parse_nanos: u64,
    /// Time spent translating and planning.
    pub plan_nanos: u64,
    /// Time spent executing the plan to completion.
    pub execute_nanos: u64,
    /// The planner's estimated result cardinality.
    pub estimated_rows: usize,
    /// The observed result cardinality.
    pub actual_rows: usize,
    /// The +1-smoothed q-error of the cardinality estimate:
    /// `max((est+1)/(act+1), (act+1)/(est+1))`. Always finite, ≥ 1,
    /// and 1.0 exactly when the estimate was spot-on.
    pub estimate_error: f64,
}

/// Render nanoseconds at a human scale (`ns`/`µs`/`ms`/`s`).
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

impl std::fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.steps {
            writeln!(f, "{}", s.text)?;
            writeln!(
                f,
                "    actual: rows {}, probes {}, candidates {}, residual evals {}, time {}",
                s.actual_rows,
                s.probes,
                s.candidates,
                s.residual_evals,
                fmt_nanos(s.nanos)
            )?;
        }
        for c in &self.checks {
            writeln!(f, "{c}")?;
        }
        writeln!(
            f,
            "stages: parse {}, plan {}, execute {}",
            fmt_nanos(self.parse_nanos),
            fmt_nanos(self.plan_nanos),
            fmt_nanos(self.execute_nanos)
        )?;
        writeln!(
            f,
            "rows: estimated {}, actual {}, estimate error {:.2}x",
            self.estimated_rows, self.actual_rows, self.estimate_error
        )
    }
}

/// First tree-id span of the adaptive chunk schedule: the number of
/// trees expected to hold `need` matches (from the planner's result
/// estimate), doubled for slack. An estimate of zero means "probably
/// nothing anywhere" — cover the whole corpus in one round instead of
/// crawling through O(log n) empty rounds.
fn initial_span(need: usize, estimated_result: usize, ntrees: usize) -> usize {
    if estimated_result == 0 {
        return ntrees.max(1);
    }
    let trees = need.saturating_mul(ntrees) / estimated_result;
    trees
        .saturating_add(1)
        .saturating_mul(2)
        .clamp(1, ntrees.max(1))
}

/// Span of the next round, re-estimated from the density observed so
/// far: `found` matches over `scanned` trees leaves `need - found` to
/// cover, again doubled for slack. A round that found nothing means the
/// estimate was wrong — finish the corpus in one go. Growth is clamped
/// below by the trees already scanned, so even an adversarial corpus
/// sees O(log n) rounds.
fn next_span(found: usize, scanned: usize, need: usize, ntrees: usize) -> usize {
    let remaining = ntrees.saturating_sub(scanned);
    if found == 0 {
        return remaining.max(1);
    }
    let predicted = need.saturating_sub(found).saturating_mul(scanned) / found;
    // The caller clamps `lo + span` to the corpus, so only the lower
    // bound matters here.
    predicted.saturating_add(1).saturating_mul(2).max(scanned)
}

/// One batch member's outcome: document-ordered matches, or the
/// member's own planning error.
pub type QueryResult = Result<Vec<(u32, NodeId)>, EngineError>;

/// Work accounting for one [`Engine::eval_batch_shared`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Members whose anchor enumeration was shared with at least one
    /// other batch member (i.e. the sum of sizes of groups of ≥ 2).
    pub shared_scans: u64,
    /// Per-member residual evaluations against shared anchor rows —
    /// the work sharing could not remove.
    pub residual_evals: u64,
}

/// Convert relational `(tid, id)` rows to `(tree index, node)` matches.
/// Relational ids start at 2 (1 is the document node).
fn rows_to_matches(rows: Vec<Vec<Value>>) -> Vec<(u32, NodeId)> {
    rows.into_iter()
        .map(|row| {
            debug_assert_eq!(row.len(), 2);
            (row[0], NodeId(row[1] - 2))
        })
        .collect()
}

/// One [`Engine::query_resume`] step: the document-ordered rows this
/// call produced, plus the checkpoint to continue from (`None` once
/// the enumeration is known complete).
pub type Resumed = (Vec<(u32, NodeId)>, Option<QueryCheckpoint>);

/// A suspended document-order enumeration (see
/// [`Engine::query_resume`]): rows already enumerated but not yet
/// emitted, plus whatever the chosen execution strategy needs to
/// continue — a suspended relational pipeline
/// ([`lpath_relstore::CursorCheckpoint`] + the in-flight tree's
/// partial buffer + the plan it belongs to) or the next unscanned
/// tree id of the chunked schedule.
///
/// Checkpoints are plain owned data: they can be cached, cloned and
/// resumed long after the call that produced them (the service keeps
/// one per cached result prefix). They are only meaningful against
/// the same engine and query they were suspended from.
#[derive(Clone, Debug)]
pub struct QueryCheckpoint {
    /// Document-ordered rows enumerated past the last emitted page.
    pending: Vec<(u32, NodeId)>,
    /// The `FirstRows(k)` goal the strategy's plan was built with at
    /// the first call. Carried so a checkpoint serialized to the wire
    /// does not need to carry the plan itself: decoding re-plans the
    /// same query with the same goal over the same engine content,
    /// which is deterministic and lands on the identical plan.
    plan_k: usize,
    state: ResumeState,
}

impl QueryCheckpoint {
    /// Rows already enumerated and awaiting emission — served (for
    /// free) by the next [`Engine::query_resume`] call before any
    /// further evaluation.
    pub fn buffered(&self) -> usize {
        self.pending.len() + self.stream_buffered()
    }

    /// Is this checkpoint on the suspended-pipeline strategy (as
    /// opposed to chunked re-planning or a fully drained state)?
    pub fn is_streaming(&self) -> bool {
        matches!(self.state, ResumeState::Stream { .. })
    }

    fn stream_buffered(&self) -> usize {
        match &self.state {
            ResumeState::Stream { buf, .. } => buf.len(),
            _ => 0,
        }
    }

    /// Serialize this checkpoint into `w`.
    ///
    /// The plan is **not** written: tokens carry the `FirstRows(k)`
    /// goal it was built with instead, and
    /// [`Engine::decode_checkpoint`] re-plans deterministically. That
    /// keeps tokens small and — more importantly — means a decoded
    /// token can never inject a forged plan: the plan that executes is
    /// always the server's own.
    pub fn encode_into(&self, w: &mut wire::Writer) {
        w.usize(self.plan_k);
        encode_rows(w, &self.pending);
        match &self.state {
            ResumeState::Drained => w.u8(0),
            ResumeState::Stream { cursor, buf, .. } => {
                w.u8(1);
                cursor.encode_into(w);
                encode_rows(w, buf);
            }
            ResumeState::Chunked { next_tree, .. } => {
                w.u8(2);
                w.usize(*next_tree);
            }
        }
    }
}

/// Write a `(tree id, node)` row list, length-prefixed.
fn encode_rows(w: &mut wire::Writer, rows: &[(u32, NodeId)]) {
    w.usize(rows.len());
    for &(tid, node) in rows {
        w.u32(tid);
        w.u32(node.0);
    }
}

/// Read a row list written by [`encode_rows`] from untrusted bytes.
fn decode_rows(r: &mut wire::Reader<'_>) -> Result<Vec<(u32, NodeId)>, wire::WireError> {
    let n = r.seq_len(8)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push((r.u32()?, NodeId(r.u32()?)));
    }
    Ok(rows)
}

/// The strategy-specific half of a [`QueryCheckpoint`].
#[derive(Clone, Debug)]
enum ResumeState {
    /// One suspended pipeline serves every page: the plan, the
    /// suspended cursor over it, and the matches of the tree the
    /// cursor is currently inside (complete only once the anchor
    /// moves past it).
    Stream {
        plan: Box<rel::Plan>,
        cursor: rel::CursorCheckpoint,
        buf: Vec<(u32, NodeId)>,
    },
    /// Chunked evaluation: the plan the chunks range over, plus the
    /// watermark — everything below `next_tree` has been enumerated
    /// (and sits in `pending` if not yet emitted).
    Chunked {
        plan: Box<rel::Plan>,
        next_tree: usize,
    },
    /// The enumeration is complete; only `pending` rows remain.
    Drained,
}

/// A streaming match iterator (see [`Engine::matches`]). Yields
/// `(tree index, node)` pairs in pipeline order as the underlying
/// [`rel::Cursor`] produces them.
pub struct Matches<'e> {
    cursor: rel::Cursor<'e>,
}

impl Iterator for Matches<'_> {
    type Item = (u32, NodeId);

    fn next(&mut self) -> Option<(u32, NodeId)> {
        self.cursor.next().map(|row| {
            debug_assert_eq!(row.len(), 2);
            (row[0], NodeId(row[1] - 2))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn engine() -> Engine {
        Engine::build(&parse_str(FIG1).unwrap())
    }

    #[test]
    fn relation_matches_figure5() {
        let e = engine();
        // 15 elements + 9 @lex attributes.
        assert_eq!(e.relation_size(), 24);
    }

    #[test]
    fn explain_analyze_annotates_actuals_per_step() {
        let e = engine();
        let ea = e.explain_analyze("//VP//NP[not(//Det)]").unwrap();
        // Actual result cardinality matches the plain query.
        assert_eq!(
            ea.actual_rows,
            e.query("//VP//NP[not(//Det)]").unwrap().len()
        );
        // One annotated report per plan step, each echoing the EXPLAIN
        // line, and the negated subquery shows up as a check line.
        assert!(!ea.steps.is_empty());
        for (i, s) in ea.steps.iter().enumerate() {
            assert!(s.text.starts_with(&format!("step {i}:")), "{}", s.text);
            assert!(s.candidates >= s.actual_rows);
        }
        assert!(ea.checks.iter().any(|c| c.contains("NOT EXISTS")));
        // The last pipeline step's survivors bound the output from
        // above (DISTINCT can only shrink it further).
        assert!(ea.steps.last().unwrap().actual_rows as usize >= ea.actual_rows);
        assert!(ea.estimate_error.is_finite() && ea.estimate_error >= 1.0);
        // Rendering carries the annotation vocabulary.
        let text = ea.to_string();
        assert!(text.contains("actual: rows"));
        assert!(text.contains("stages: parse"));
        assert!(text.contains("estimate error"));
    }

    #[test]
    fn explain_analyze_is_finite_on_empty_results() {
        let e = engine();
        let ea = e.explain_analyze("//ZZZ").unwrap();
        assert_eq!(ea.actual_rows, 0);
        assert!(ea.estimate_error.is_finite());
        assert!(e.explain_analyze("//(").is_err());
    }

    #[test]
    fn batch_matches_solo_and_shares_anchors() {
        let e = engine();
        let texts = [
            "//NP",             // same `name = NP` anchor …
            "//NP[not(//Det)]", // … shared by all three (negated
            "//NP[not(//Adj)]", //     checks keep the anchor)
            "//Prep",           // unique anchor: runs solo
            "//ZZZ",            // statically empty: constant plan, unshareable
        ];
        let asts: Vec<_> = texts
            .iter()
            .map(|t| lpath_syntax::parse(t).unwrap())
            .collect();
        let refs: Vec<&lpath_syntax::Path> = asts.iter().collect();
        let (results, stats) = e.eval_batch_shared(&refs);
        assert_eq!(results.len(), 5);
        for (t, r) in texts.iter().zip(&results) {
            assert_eq!(r.as_ref().unwrap(), &e.query(t).unwrap(), "{t}");
        }
        // The three //NP-anchored members rode one scan.
        assert_eq!(stats.shared_scans, 3);
        assert!(stats.residual_evals > 0);
        // A batch of one shares nothing and still agrees.
        let one = [&asts[0]];
        let (solo, st) = e.eval_batch_shared(&one);
        assert_eq!(solo[0].as_ref().unwrap(), &e.query("//NP").unwrap());
        assert_eq!(st.shared_scans, 0);
        assert_eq!(st.residual_evals, 0);
    }

    #[test]
    fn figure2_results_via_sql() {
        let e = engine();
        assert_eq!(e.count("//S[//_[@lex=saw]]").unwrap(), 1);
        assert_eq!(e.count("//V=>NP").unwrap(), 1);
        assert_eq!(e.count("//V->NP").unwrap(), 2);
        assert_eq!(e.count("//VP/V-->N").unwrap(), 3);
        assert_eq!(e.count("//VP{/V-->N}").unwrap(), 2);
        assert_eq!(e.count("//VP{/NP$}").unwrap(), 1);
        assert_eq!(e.count("//VP{//NP$}").unwrap(), 2);
    }

    #[test]
    fn engine_agrees_with_walker() {
        let corpus = parse_str(FIG1).unwrap();
        let e = Engine::build(&corpus);
        let w = crate::Walker::new(&corpus);
        for q in [
            "//NP",
            "/S",
            "//V->NP",
            "//V-->N",
            "//NP<--_",
            "//N<==Det",
            "//N<=Det",
            "//VP{//NP$}",
            "//^NP",
            "//N$",
            "//S[//NP/PP]",
            "//NP[//Det and //Adj]",
            "//NP[not(//Det)]",
            "//_[@lex=saw]",
            "//_[@lex!=dog]",
            "//_[@lex]",
            "//Det\\NP",
            "//NP\\\\VP",
            "//VP[{//^V->NP$}]",
            "//S{/VP/V[-->N[@lex=dog]]}",
            // Function library (paper footnote 1).
            "//NP[count(//Det)>0]",
            "//NP[count(/NP)=0]",
            "//NP[not(count(//Det)=0)]",
            "//_[contains(@lex,'og')]",
            "//_[starts-with(@lex,s)]",
            "//_[ends-with(@lex,w)]",
            "//_[not(contains(@lex,'a'))]",
            "//_[string-length(@lex)=3]",
            "//_[string-length(@lex)>4]",
            "//NP[//_[contains(@lex,o)]]",
            "//VP{//_[starts-with(@lex,d)]}",
        ] {
            let ast = lpath_syntax::parse(q).unwrap();
            let got = e.query(q).unwrap_or_else(|err| panic!("{q}: {err}"));
            let want = w.eval(&ast);
            assert_eq!(got, want, "disagreement on {q}");
        }
    }

    #[test]
    fn sql_rendering_uses_symbolic_names() {
        let e = engine();
        let sql = e.sql("//V->NP").unwrap();
        assert!(sql.contains("= 'V'"), "{sql}");
        assert!(sql.contains("= 'NP'"), "{sql}");
    }

    #[test]
    fn explain_shows_index_probes() {
        let e = engine();
        let plan = e.explain("//V->NP").unwrap();
        assert!(plan.contains("index"), "{plan}");
    }

    #[test]
    fn unsupported_features_error_cleanly() {
        let e = engine();
        assert!(matches!(
            e.count("//VP/_[last()]"),
            Err(EngineError::Unsupported(_))
        ));
        assert!(matches!(e.count("//VP["), Err(EngineError::Syntax(_))));
        // count() thresholds beyond existence need the walker.
        assert!(matches!(
            e.count("//NP[count(//Det)>2]"),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn function_library_results() {
        let e = engine();
        // "dog" contains "og"; nothing else does.
        assert_eq!(e.count("//_[contains(@lex,'og')]").unwrap(), 1);
        // "saw" starts with "s".
        assert_eq!(e.count("//_[starts-with(@lex,s)]").unwrap(), 1);
        // Three-letter terminals: saw, the, old, man, dog.
        assert_eq!(e.count("//_[string-length(@lex)=3]").unwrap(), 5);
        // count(...)>0 is existence: NPs containing a Det.
        assert_eq!(e.count("//NP[count(//Det)>0]").unwrap(), 3);
        assert_eq!(e.count("//NP[count(//Det)=0]").unwrap(), 1);
    }

    #[test]
    fn function_library_sql_uses_in_sets() {
        let e = engine();
        let sql = e.sql("//_[contains(@lex,'og')]").unwrap();
        assert!(sql.contains(" IN ("), "{sql}");
        assert!(sql.contains("'dog'"), "{sql}");
        // Unsatisfiable set: falls back to the impossible condition.
        let sql = e.sql("//_[contains(@lex,'zzz')]").unwrap();
        assert!(sql.contains("left < 0"), "{sql}");
        // Negation goes through NOT EXISTS.
        let sql = e.sql("//_[not(contains(@lex,'og'))]").unwrap();
        assert!(sql.contains("NOT EXISTS"), "{sql}");
    }

    #[test]
    fn syntactic_join_order_gives_same_answers() {
        let corpus = parse_str(FIG1).unwrap();
        let greedy = Engine::build(&corpus);
        let syntactic = Engine::with_config(
            &corpus,
            PlannerConfig {
                order: rel::JoinOrder::Syntactic,
                ..Default::default()
            },
        );
        for q in ["//V->NP", "//VP{/NP$}", "//S[//NP/PP]", "//NP[not(//Det)]"] {
            assert_eq!(greedy.query(q).unwrap(), syntactic.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn multi_tree_tids() {
        let corpus = parse_str(&format!("{FIG1}\n{FIG1}\n{FIG1}")).unwrap();
        let e = Engine::build(&corpus);
        let got = e.query("//V->NP").unwrap();
        assert_eq!(got.len(), 6);
        for tid in 0..3u32 {
            assert_eq!(got.iter().filter(|(t, _)| *t == tid).count(), 2);
        }
    }

    #[test]
    fn exists_matches_nonempty_query() {
        let e = engine();
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//_[@lex=saw]"] {
            assert!(e.exists(q).unwrap(), "{q}");
        }
        for q in ["//ZZZ", "//_[@lex=zzz]", "//NP/ZZZ"] {
            assert!(!e.exists(q).unwrap(), "{q}");
        }
        assert!(e.exists("//VP[").is_err());
    }

    #[test]
    fn matches_streams_the_full_set_in_some_order() {
        let corpus = parse_str(&format!("{FIG1}\n{FIG1}")).unwrap();
        let e = Engine::build(&corpus);
        for q in ["//NP", "//V->NP", "//VP{//NP$}"] {
            let mut streamed: Vec<(u32, NodeId)> = e.matches(q).unwrap().collect();
            streamed.sort_unstable();
            assert_eq!(streamed, e.query(q).unwrap(), "{q}");
        }
        // Pulling one match does not require the rest.
        assert!(e.matches("//NP").unwrap().next().is_some());
        assert!(e.matches("//ZZZ").unwrap().next().is_none());
    }

    #[test]
    fn query_limit_is_a_prefix_slice() {
        // 20 trees so the chunked evaluation crosses range boundaries.
        let src: String = std::iter::repeat_n(FIG1, 20).collect::<Vec<_>>().join("\n");
        let corpus = parse_str(&src).unwrap();
        let e = Engine::build(&corpus);
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//ZZZ"] {
            let full = e.query(q).unwrap();
            for (offset, limit) in [
                (0, 0),
                (0, 1),
                (0, 5),
                (3, 4),
                (7, 100),
                (full.len(), 3),
                (full.len() + 10, 3),
                (0, usize::MAX),
            ] {
                let want: Vec<(u32, NodeId)> =
                    full.iter().skip(offset).take(limit).copied().collect();
                assert_eq!(
                    e.query_limit(q, offset, limit).unwrap(),
                    want,
                    "{q} offset {offset} limit {limit}"
                );
            }
        }
    }

    #[test]
    fn query_limit_goals_agree_and_push_ranges_into_the_index() {
        let src: String = std::iter::repeat_n(FIG1, 30).collect::<Vec<_>>().join("\n");
        let corpus = parse_str(&src).unwrap();
        let e = Engine::build(&corpus);
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//_", "//ZZZ"] {
            let ast = lpath_syntax::parse(q).unwrap();
            let full = e.query(q).unwrap();
            for (offset, limit) in [(0, 1), (0, 10), (3, 4), (full.len(), 2), (0, usize::MAX)] {
                let want: Vec<(u32, NodeId)> =
                    full.iter().skip(offset).take(limit).copied().collect();
                for goal in [
                    OptGoal::AllRows,
                    OptGoal::FirstRows(offset.saturating_add(limit)),
                    OptGoal::FirstRows(1),
                ] {
                    assert_eq!(
                        e.query_limit_with(&ast, offset, limit, goal).unwrap(),
                        want,
                        "{q} offset {offset} limit {limit} goal {goal:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tid_bounds_become_index_bounds_on_name_anchored_plans() {
        let e = engine();
        let ast = lpath_syntax::parse("//NP").unwrap();
        let cq = e.translate(&ast).unwrap();
        let mut plan = rel::plan(
            &e.db,
            &cq,
            &PlannerConfig {
                goal: OptGoal::FirstRows(1),
                ..Default::default()
            },
        );
        e.push_tid_range(&mut plan, 0, 1, true);
        // The clustered index is keyed (name, tid, …): the bounds must
        // have landed on the index probe, not the residual.
        let rel::AccessPath::IndexRange { lo, hi, .. } = &plan.steps[0].access else {
            panic!("expected an index probe: {plan}");
        };
        assert!(lo.is_some() && hi.is_some(), "{plan}");
        assert_eq!(plan.steps[0].residual.len(), 0, "{plan}");
        // The legacy (AllRows) path keeps bounds as residual filters.
        let cq = e.translate(&ast).unwrap();
        let mut plan = rel::plan(&e.db, &cq, &PlannerConfig::default());
        let residual_before = plan.steps[0].residual.len();
        e.push_tid_range(&mut plan, 0, 1, false);
        assert_eq!(plan.steps[0].residual.len(), residual_before + 2);
    }

    #[test]
    fn adaptive_spans_cover_dense_and_sparse_in_one_round() {
        // Dense: plenty of matches per tree — the span stays small.
        assert!(initial_span(10, 1_000, 100) <= 4);
        // Sparse: few matches corpus-wide — the span covers most of
        // the corpus at once.
        assert!(initial_span(10, 2, 100) >= 100);
        // Nothing expected at all: one round over everything.
        assert_eq!(initial_span(10, 0, 100), 100);
        assert_eq!(initial_span(5, 7, 0), 1);
        // Next rounds extrapolate the observed density...
        assert!(next_span(5, 10, 10, 1_000) >= 10);
        // ...and a dry round finishes the corpus.
        assert_eq!(next_span(0, 10, 10, 1_000), 990);
    }

    #[test]
    fn query_resume_concatenation_is_exact_at_every_boundary() {
        let src: String = std::iter::repeat_n(FIG1, 12).collect::<Vec<_>>().join("\n");
        let corpus = parse_str(&src).unwrap();
        let e = Engine::build(&corpus);
        // Streamable anchors and chunked fallbacks alike.
        for q in ["//NP", "//V->NP", "//NP[not(//Det)]", "//_", "//ZZZ"] {
            let ast = lpath_syntax::parse(q).unwrap();
            let full = e.query(q).unwrap();
            // Two-call split at every row boundary.
            for split in 0..=full.len() {
                let (head, ckpt) = e.query_resume(&ast, None, split.max(1)).unwrap();
                let cut = split.max(1).min(full.len());
                assert_eq!(head, full[..cut], "{q} split {split}");
                let Some(ckpt) = ckpt else {
                    assert_eq!(cut, full.len(), "{q} split {split}");
                    continue;
                };
                let (tail, end) = e.query_resume(&ast, Some(ckpt), usize::MAX).unwrap();
                assert_eq!(tail, full[cut..], "{q} split {split}");
                assert!(end.is_none(), "{q} split {split}");
            }
            // Page-at-a-time sweep, page size 3.
            let mut got = Vec::new();
            let mut ckpt = None;
            loop {
                let (rows, next) = e.query_resume(&ast, ckpt, 3).unwrap();
                got.extend(rows);
                match next {
                    Some(c) => ckpt = Some(c),
                    None => break,
                }
            }
            assert_eq!(got, full, "{q} sweep");
        }
    }

    #[test]
    fn name_anchored_queries_resume_on_the_suspended_pipeline() {
        let src: String = std::iter::repeat_n(FIG1, 8).collect::<Vec<_>>().join("\n");
        let corpus = parse_str(&src).unwrap();
        let e = Engine::build(&corpus);
        // `//NP` anchors on the clustered (name, tid, …) index: the
        // stream strategy applies and pages come from one suspended
        // cursor, not from re-planned chunks.
        let ast = lpath_syntax::parse("//NP").unwrap();
        let (page, ckpt) = e.query_resume(&ast, None, 2).unwrap();
        assert_eq!(page.len(), 2);
        let ckpt = ckpt.expect("more NPs remain");
        assert!(ckpt.is_streaming());
        let (more, _) = e.query_resume(&ast, Some(ckpt), 2).unwrap();
        assert_eq!(more, e.query("//NP").unwrap()[2..4]);
    }

    #[test]
    fn query_resume_errors_on_unsupported_queries() {
        let e = engine();
        assert!(matches!(
            e.query_resume(&lpath_syntax::parse("//VP/_[last()]").unwrap(), None, 5),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn check_uses_the_corpus_vocabulary() {
        let e = engine();
        // Unknown tag: proven empty with a spanned diagnostic.
        let r = e.check("//ZZZ").unwrap();
        assert!(r.statically_empty);
        assert_eq!(r.errors().next().unwrap().code, "unknown-tag");
        // Known tags pass clean.
        assert!(e.check("//NP/VP").unwrap().is_clean());
        // Unknown lexeme under equality: proven empty.
        assert!(e.check("//_[@lex=zzz]").unwrap().statically_empty);
        // Structural contradiction needs no vocabulary (check works
        // even on queries the relational translator rejects).
        assert!(e.check("//NP[position()=0]").unwrap().statically_empty);
        // Syntax errors still surface.
        assert!(e.check("//VP[").is_err());
    }

    #[test]
    fn statically_empty_queries_run_the_constant_empty_plan() {
        let e = engine();
        for q in ["//ZZZ", "//_[@lex=zzz]", "//_[@lex=saw and @lex=the]"] {
            let plan = e.plan_ast(&lpath_syntax::parse(q).unwrap()).unwrap();
            assert!(plan.const_empty, "{q}");
            assert!(plan.steps.is_empty(), "{q}");
            assert_eq!(e.query(q).unwrap(), Vec::new(), "{q}");
            assert_eq!(e.count(q).unwrap(), 0, "{q}");
            assert!(!e.exists(q).unwrap(), "{q}");
            assert_eq!(e.query_limit(q, 0, 10).unwrap(), Vec::new(), "{q}");
        }
        // A satisfiable query still plans normally.
        let plan = e.plan_ast(&lpath_syntax::parse("//NP").unwrap()).unwrap();
        assert!(!plan.const_empty && !plan.steps.is_empty());
    }

    #[test]
    fn explain_reports_lints_and_constant_empty_plans() {
        let e = engine();
        let text = e.explain("//ZZZ").unwrap();
        assert!(text.contains("constant empty"), "{text}");
        assert!(text.contains("LINT:"), "{text}");
        assert!(text.contains("unknown-tag"), "{text}");
        assert!(text.contains('^'), "caret snippet expected: {text}");
        // Warnings show up even when the query is satisfiable.
        let text = e.explain("//NP[count(//ZZZ)=0]").unwrap();
        assert!(text.contains("always-true-predicate"), "{text}");
        assert!(text.contains("step 0:"), "plan still rendered: {text}");
        // Clean queries get no LINT section.
        assert!(!e.explain("//V->NP").unwrap().contains("LINT:"));
    }

    #[test]
    fn count_avoids_materialization_but_agrees() {
        let e = engine();
        for q in ["//NP", "//V->NP", "//VP{//NP$}", "//ZZZ", "//_[@lex]"] {
            assert_eq!(e.count(q).unwrap(), e.query(q).unwrap().len(), "{q}");
        }
    }

    #[test]
    fn build_histogram_has_exact_tag_totals() {
        let e = engine();
        // Figure 1: four NPs, three Ns, a single VP.
        assert_eq!(e.tag_total("NP"), 4);
        assert_eq!(e.tag_total("N"), 3);
        assert_eq!(e.tag_total("VP"), 1);
        assert_eq!(e.tag_total("ZZZ"), 0);
        // Attribute names are not element occurrences.
        assert_eq!(e.tag_total("@lex"), 0);
    }

    #[test]
    fn refined_estimate_is_capped_by_the_scarcest_symbol() {
        let e = engine();
        // //VP//NP: at most one VP exists, so the refined estimate
        // cannot exceed the scarcest symbol's total.
        let plan = e
            .plan_ast(&lpath_syntax::parse("//VP//NP").unwrap())
            .unwrap();
        assert!(plan.estimated_result <= 1, "{}", plan.estimated_result);
        // Paging still returns the correct full result under the
        // density-driven schedule.
        assert_eq!(
            e.query_limit("//VP//NP", 0, 100).unwrap(),
            e.query("//VP//NP").unwrap()
        );
    }

    #[test]
    fn count_resume_sums_to_one_shot_count() {
        let e = engine();
        // `//V->NP` exercises the dedup path (2 distinct matches from
        // 2 pipeline rows), `//NP/_` the dedup-free fast path.
        for q in ["//NP", "//V->NP", "//VP{//NP$}", "//NP/_", "//ZZZ"] {
            let ast = lpath_syntax::parse(q).unwrap();
            let total = e.count(q).unwrap() as u64;
            for budget in 1..4 {
                let mut sum = 0;
                let mut ckpt = None;
                let mut rounds = 0;
                loop {
                    let (n, next) = e.count_resume(&ast, ckpt, budget).unwrap();
                    sum += n;
                    rounds += 1;
                    assert!(rounds < 100, "count_resume failed to converge");
                    match next {
                        Some(c) => ckpt = Some(c),
                        None => break,
                    }
                }
                assert_eq!(sum, total, "{q} with budget {budget}");
            }
        }
    }

    #[test]
    fn dedup_free_plans_really_skip_the_watermarks() {
        let e = engine();
        // A reverse-functional chain: provably duplicate-free.
        let plan = e
            .plan_ast(&lpath_syntax::parse("//NP/NP").unwrap())
            .unwrap();
        assert!(plan.dedup_free);
        // `->` can reach one node from several left neighbors.
        let plan = e
            .plan_ast(&lpath_syntax::parse("//V->NP").unwrap())
            .unwrap();
        assert!(!plan.dedup_free);
    }
}
