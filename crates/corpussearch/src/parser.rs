//! Parser for the CorpusSearch-style query language.
//!
//! ```text
//! query  := 'find' decl (',' decl)* ('where' clause (',' clause)*)?
//! decl   := NAME ':' (TAG | '*')
//! clause := 'not'? NAME (REL NAME | 'hasWord' WORD)
//! ```

use crate::ast::{Clause, CsQuery, CsRel, VarDecl};

/// A parse failure with its byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CsParseError {
    /// Byte offset in the query source.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corpussearch parse error at {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for CsParseError {}

/// Parse a `find … where …` query.
pub fn parse_query(src: &str) -> Result<CsQuery, CsParseError> {
    let mut p = P {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    p.keyword("find")?;
    let mut vars = Vec::new();
    loop {
        p.ws();
        vars.push(p.decl()?);
        p.ws();
        if p.peek() == Some(b',') {
            p.i += 1;
        } else {
            break;
        }
    }
    let mut clauses = Vec::new();
    p.ws();
    if !p.at_end() {
        p.keyword("where")?;
        loop {
            p.ws();
            clauses.push(p.clause(&vars)?);
            p.ws();
            if p.peek() == Some(b',') {
                p.i += 1;
            } else {
                break;
            }
        }
    }
    p.ws();
    if !p.at_end() {
        return Err(p.err("trailing input"));
    }
    let q = CsQuery { vars, clauses };
    // Every positive variable except negatives must be reachable… we
    // only validate name uniqueness here; semantics handles the rest.
    for (i, a) in q.vars.iter().enumerate() {
        for b in &q.vars[i + 1..] {
            if a.name == b.name {
                return Err(CsParseError {
                    offset: 0,
                    message: format!("duplicate variable '{}'", a.name),
                });
            }
        }
    }
    Ok(q)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn err(&self, m: impl Into<String>) -> CsParseError {
        CsParseError {
            offset: self.i,
            message: m.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn word(&mut self) -> Result<String, CsParseError> {
        if self.peek() == Some(b'"') || self.peek() == Some(b'\'') {
            let quote = self.b[self.i];
            self.i += 1;
            let start = self.i;
            while self.i < self.b.len() && self.b[self.i] != quote {
                self.i += 1;
            }
            if self.at_end() {
                return Err(self.err("unterminated quote"));
            }
            let s = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.i += 1;
            return Ok(s);
        }
        let start = self.i;
        while self.i < self.b.len()
            && (self.b[self.i].is_ascii_alphanumeric()
                || self.b[self.i] == b'-'
                || self.b[self.i] == b'_')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a word"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn keyword(&mut self, kw: &str) -> Result<(), CsParseError> {
        self.ws();
        let got = self.word()?;
        if got.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found '{got}'")))
        }
    }

    fn decl(&mut self) -> Result<VarDecl, CsParseError> {
        let name = self.word()?;
        self.ws();
        if self.peek() != Some(b':') {
            return Err(self.err("expected ':' in variable declaration"));
        }
        self.i += 1;
        self.ws();
        let tag = if self.peek() == Some(b'*') {
            self.i += 1;
            None
        } else {
            Some(self.word()?)
        };
        Ok(VarDecl { name, tag })
    }

    fn var_index(&self, vars: &[VarDecl], name: &str) -> Result<usize, CsParseError> {
        vars.iter()
            .position(|v| v.name == name)
            .ok_or_else(|| self.err(format!("undeclared variable '{name}'")))
    }

    fn clause(&mut self, vars: &[VarDecl]) -> Result<Clause, CsParseError> {
        let first = self.word()?;
        let (negated, left_name) = if first.eq_ignore_ascii_case("not") {
            self.ws();
            (true, self.word()?)
        } else {
            (false, first)
        };
        let left = self.var_index(vars, &left_name)?;
        self.ws();
        let rel_name = self.word()?;
        if rel_name.eq_ignore_ascii_case("hasWord") {
            self.ws();
            let word = self.word()?;
            return Ok(Clause::HasWord {
                negated,
                var: left,
                word,
            });
        }
        let rel = CsRel::from_name(&rel_name)
            .ok_or_else(|| self.err(format!("unknown search function '{rel_name}'")))?;
        self.ws();
        let right_name = self.word()?;
        let right = self.var_index(vars, &right_name)?;
        Ok(Clause::Rel {
            negated,
            left,
            rel,
            right,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let q = parse_query("find n:NP, v:VB where v iPrecedes n").unwrap();
        assert_eq!(q.vars.len(), 2);
        assert_eq!(q.vars[0].tag.as_deref(), Some("NP"));
        assert_eq!(
            q.clauses[0],
            Clause::Rel {
                negated: false,
                left: 1,
                rel: CsRel::IPrecedes,
                right: 0
            }
        );
    }

    #[test]
    fn wildcard_and_words() {
        let q = parse_query("find s:S, w:* where s doms w, w hasWord saw").unwrap();
        assert_eq!(q.vars[1].tag, None);
        assert_eq!(
            q.clauses[1],
            Clause::HasWord {
                negated: false,
                var: 1,
                word: "saw".into()
            }
        );
    }

    #[test]
    fn negation_and_negative_vars() {
        let q = parse_query("find n:NP, j:JJ where not n doms j").unwrap();
        assert!(q.clauses[0].negated());
        assert!(q.is_negative(1));
        assert!(!q.is_negative(0));
    }

    #[test]
    fn no_where_clause() {
        let q = parse_query("find x:WHPP").unwrap();
        assert!(q.clauses.is_empty());
    }

    #[test]
    fn quoted_words() {
        let q = parse_query("find x:* where x hasWord \"multi word\"").unwrap();
        let Clause::HasWord { word, .. } = &q.clauses[0] else {
            panic!()
        };
        assert_eq!(word, "multi word");
    }

    #[test]
    fn errors() {
        for bad in [
            "",
            "find",
            "find x",
            "find x:NP where",
            "find x:NP where y doms x",
            "find x:NP where x bogus x",
            "find x:NP, x:VP",
            "find x:NP extra",
        ] {
            assert!(parse_query(bad).is_err(), "{bad}");
        }
    }
}
