//! A CorpusSearch-style query engine — the second baseline of the
//! paper's evaluation (Figures 7–8).
//!
//! CorpusSearch expresses syntax-tree searches as conjunctions of named
//! search functions (`iDoms`, `precedes`, …) over typed node variables,
//! evaluated by interpreting every tree of the corpus — no
//! preprocessing, no indexes, full scan per query. That makes it the
//! consistently slowest engine in the paper's comparison, which this
//! reproduction preserves by construction.
//!
//! ```
//! use lpath_model::ptb::parse_str;
//! use lpath_corpussearch::CsEngine;
//!
//! let corpus = parse_str(
//!     "( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man)))) )",
//! ).unwrap();
//! let engine = CsEngine::new(&corpus);
//! assert_eq!(engine.count("find n:NP, v:VBD where v iPrecedes n").unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod eval;
pub mod parser;
pub mod queries;

pub use ast::{Clause, CsQuery, CsRel, VarDecl};
pub use engine::CsEngine;
pub use parser::{parse_query, CsParseError};
pub use queries::CS_QUERIES;
