//! Query AST for the CorpusSearch-style language.
//!
//! A query declares typed node variables and a conjunction of
//! (optionally negated) clauses over them:
//!
//! ```text
//! find n:NN, v:VB, p:VP where p iDoms v, v precedes n, p doms n
//! ```
//!
//! The first variable is the result: the engine counts its distinct
//! bindings. Variables whose only occurrences are in negated clauses
//! are negatively quantified ("no such node exists"), CorpusSearch
//! style.

/// Search functions relating two node variables (`X rel Y`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CsRel {
    /// X immediately dominates Y (parent).
    IDoms,
    /// X dominates Y (proper ancestor).
    Doms,
    /// X immediately precedes Y (terminal adjacency).
    IPrecedes,
    /// X precedes Y.
    Precedes,
    /// Y is X's first child.
    IDomsFirst,
    /// Y is X's last child.
    IDomsLast,
    /// Y is a left-aligned descendant of X.
    DomsLeftEdge,
    /// Y is a right-aligned descendant of X.
    DomsRightEdge,
    /// X and Y are distinct sisters (same parent).
    SameParent,
    /// X and Y are sisters and X's subtree immediately precedes Y's.
    ISisterPrecedes,
    /// X and Y are sisters and X precedes Y.
    SisterPrecedes,
}

impl CsRel {
    /// The search-function name as written in queries.
    pub fn name(self) -> &'static str {
        use CsRel::*;
        match self {
            IDoms => "iDoms",
            Doms => "doms",
            IPrecedes => "iPrecedes",
            Precedes => "precedes",
            IDomsFirst => "iDomsFirst",
            IDomsLast => "iDomsLast",
            DomsLeftEdge => "domsLeftEdge",
            DomsRightEdge => "domsRightEdge",
            SameParent => "sameParent",
            ISisterPrecedes => "iSisterPrecedes",
            SisterPrecedes => "sisterPrecedes",
        }
    }

    /// Parse a search-function name (case-insensitive).
    pub fn from_name(s: &str) -> Option<CsRel> {
        use CsRel::*;
        // Case-insensitive, as CorpusSearch accepts.
        Some(match s.to_ascii_lowercase().as_str() {
            "idoms" => IDoms,
            "doms" | "dominates" => Doms,
            "iprecedes" => IPrecedes,
            "precedes" => Precedes,
            "idomsfirst" => IDomsFirst,
            "idomslast" => IDomsLast,
            "domsleftedge" => DomsLeftEdge,
            "domsrightedge" => DomsRightEdge,
            "sameparent" | "hassister" => SameParent,
            "isisterprecedes" => ISisterPrecedes,
            "sisterprecedes" => SisterPrecedes,
            _ => return None,
        })
    }
}

/// One clause.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Clause {
    /// `X rel Y`, optionally negated.
    Rel {
        /// Preceded by `!`.
        negated: bool,
        /// Index of the left variable.
        left: usize,
        /// The search function.
        rel: CsRel,
        /// Index of the right variable.
        right: usize,
    },
    /// `X hasWord w`, optionally negated.
    HasWord {
        /// Preceded by `!`.
        negated: bool,
        /// Index of the constrained variable.
        var: usize,
        /// The required word.
        word: String,
    },
}

impl Clause {
    /// Variables this clause mentions.
    pub fn vars(&self) -> Vec<usize> {
        match self {
            Clause::Rel { left, right, .. } => vec![*left, *right],
            Clause::HasWord { var, .. } => vec![*var],
        }
    }

    /// Is the clause negated?
    pub fn negated(&self) -> bool {
        match self {
            Clause::Rel { negated, .. } | Clause::HasWord { negated, .. } => *negated,
        }
    }
}

/// A variable declaration: name + tag pattern (`*` = any tag).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarDecl {
    /// The variable's name as written in the query.
    pub name: String,
    /// `None` means any tag.
    pub tag: Option<String>,
}

/// A full query.
#[derive(Clone, PartialEq, Debug)]
pub struct CsQuery {
    /// Declared variables; index 0 is the result variable.
    pub vars: Vec<VarDecl>,
    /// Conjoined (possibly negated) clauses.
    pub clauses: Vec<Clause>,
}

impl CsQuery {
    /// Is variable `v` *negative*: mentioned only in negated clauses
    /// (and not the result variable)?
    pub fn is_negative(&self, v: usize) -> bool {
        if v == 0 {
            return false;
        }
        let mut mentioned = false;
        for c in &self.clauses {
            if c.vars().contains(&v) {
                mentioned = true;
                if !c.negated() {
                    return false;
                }
            }
        }
        mentioned
    }
}
