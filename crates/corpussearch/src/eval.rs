//! Full-scan evaluation — deliberately index-free.
//!
//! CorpusSearch interprets its search functions per tree over the whole
//! corpus: every query costs a complete pass with nested-loop variable
//! binding. That cost profile is the point of this baseline (the
//! paper's Figures 7–8 show it trailing both other engines on nearly
//! every query). The only shortcuts taken are the obvious ones a
//! careful interpreter would also have: candidate lists are filtered by
//! tag and word constraints before joining, and clauses are checked as
//! soon as their variables are bound.

use lpath_model::{Corpus, NodeId, Tree};

use crate::ast::{Clause, CsQuery, CsRel};

/// Count distinct bindings of the result variable across the corpus.
pub fn count(corpus: &Corpus, q: &CsQuery) -> usize {
    corpus
        .trees()
        .iter()
        .map(|t| count_tree(corpus, t, q))
        .sum()
}

struct Facts {
    parent: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
    fl: Vec<u32>,
    ll: Vec<u32>,
}

impl Facts {
    fn build(tree: &Tree) -> Facts {
        let n = tree.len();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for id in tree.preorder() {
            let node = tree.node(id);
            parent[id.index()] = node.parent.map(|p| p.0);
            children[id.index()] = node.children.iter().map(|c| c.0).collect();
        }
        let mut ord = 0u32;
        let mut fl = vec![0u32; n];
        let mut ll = vec![0u32; n];
        for id in tree.preorder() {
            if tree.node(id).is_leaf() {
                ord += 1;
                fl[id.index()] = ord;
                ll[id.index()] = ord;
            }
        }
        for idx in (0..n).rev() {
            let kids = &children[idx];
            if !kids.is_empty() {
                fl[idx] = fl[kids[0] as usize];
                ll[idx] = ll[*kids.last().expect("non-empty") as usize];
            }
        }
        Facts {
            parent,
            children,
            fl,
            ll,
        }
    }

    fn doms(&self, x: u32, y: u32) -> bool {
        let mut a = self.parent[y as usize];
        while let Some(p) = a {
            if p == x {
                return true;
            }
            a = self.parent[p as usize];
        }
        false
    }

    fn rel(&self, r: CsRel, x: u32, y: u32) -> bool {
        use CsRel::*;
        match r {
            IDoms => self.parent[y as usize] == Some(x),
            Doms => self.doms(x, y),
            IPrecedes => self.fl[y as usize] == self.ll[x as usize] + 1,
            Precedes => self.fl[y as usize] > self.ll[x as usize],
            IDomsFirst => self.children[x as usize].first() == Some(&y),
            IDomsLast => self.children[x as usize].last() == Some(&y),
            DomsLeftEdge => self.doms(x, y) && self.fl[y as usize] == self.fl[x as usize],
            DomsRightEdge => self.doms(x, y) && self.ll[y as usize] == self.ll[x as usize],
            SameParent => {
                x != y
                    && self.parent[x as usize].is_some()
                    && self.parent[x as usize] == self.parent[y as usize]
            }
            ISisterPrecedes => {
                self.rel(SameParent, x, y) && self.fl[y as usize] == self.ll[x as usize] + 1
            }
            SisterPrecedes => {
                self.rel(SameParent, x, y) && self.fl[y as usize] > self.ll[x as usize]
            }
        }
    }
}

fn count_tree(corpus: &Corpus, tree: &Tree, q: &CsQuery) -> usize {
    let facts = Facts::build(tree);
    let lex = corpus.interner().get("@lex");
    let has_word = |n: u32, w: &str| -> bool {
        let Some(lex) = lex else { return false };
        let Some(v) = tree.node(NodeId(n)).attr(lex) else {
            return false;
        };
        corpus.resolve(v) == w
    };

    let negative: Vec<bool> = (0..q.vars.len()).map(|v| q.is_negative(v)).collect();

    // Candidate lists per positive variable: tag scan + unary word
    // filters (positive or negated) on that variable.
    let mut cands: Vec<Vec<u32>> = Vec::with_capacity(q.vars.len());
    for (v, decl) in q.vars.iter().enumerate() {
        if negative[v] {
            cands.push(Vec::new());
            continue;
        }
        let want = decl.tag.as_deref().map(|t| corpus.interner().get(t));
        if want == Some(None) {
            // Tag absent from the corpus: the variable cannot bind.
            return 0;
        }
        let mut list: Vec<u32> = tree
            .preorder()
            .filter(|id| match want {
                None => true,
                Some(Some(sym)) => tree.node(*id).name == sym,
                Some(None) => unreachable!(),
            })
            .map(|id| id.0)
            .collect();
        for c in &q.clauses {
            if let Clause::HasWord { negated, var, word } = c {
                if *var == v {
                    list.retain(|&n| has_word(n, word) != *negated);
                }
            }
        }
        cands.push(list);
    }

    // Clauses participating in the positive join (both sides positive).
    let positive_clauses: Vec<&Clause> = q
        .clauses
        .iter()
        .filter(|c| c.vars().iter().all(|&v| !negative[v]) && matches!(c, Clause::Rel { .. }))
        .collect();

    // Negative groups: per negative variable, the conjunction of its
    // (negated) clauses — satisfied when NO node fits them all.
    let neg_groups: Vec<(usize, Vec<&Clause>)> = (0..q.vars.len())
        .filter(|&v| negative[v])
        .map(|v| {
            let clauses = q.clauses.iter().filter(|c| c.vars().contains(&v)).collect();
            (v, clauses)
        })
        .collect();

    let mut bound = vec![u32::MAX; q.vars.len()];
    let mut found = 0usize;
    let head_cands = std::mem::take(&mut cands[0]);
    for &h in &head_cands {
        bound[0] = h;
        if assign(
            1,
            q,
            &facts,
            &cands,
            &negative,
            &positive_clauses,
            &neg_groups,
            &mut bound,
            tree,
            corpus,
        ) {
            found += 1;
        }
    }
    found
}

/// Bind positive variables `v..` depth-first; returns true on the first
/// complete satisfying assignment.
// The recursion threads the full matcher state; bundling it in a struct
// would only rename the arguments.
#[allow(clippy::too_many_arguments)]
fn assign(
    v: usize,
    q: &CsQuery,
    facts: &Facts,
    cands: &[Vec<u32>],
    negative: &[bool],
    positive_clauses: &[&Clause],
    neg_groups: &[(usize, Vec<&Clause>)],
    bound: &mut [u32],
    tree: &Tree,
    corpus: &Corpus,
) -> bool {
    // All positive vars bound?
    if v == q.vars.len() {
        return check_neg_groups(q, facts, neg_groups, bound, tree, corpus);
    }
    if negative[v] {
        return assign(
            v + 1,
            q,
            facts,
            cands,
            negative,
            positive_clauses,
            neg_groups,
            bound,
            tree,
            corpus,
        );
    }
    'outer: for &cand in &cands[v] {
        bound[v] = cand;
        // Check every relational clause whose variables are now bound
        // and whose latest variable is `v`.
        for c in positive_clauses {
            let vars = c.vars();
            if !vars.contains(&v) || vars.iter().any(|&x| x > v) {
                continue;
            }
            let Clause::Rel {
                negated,
                left,
                rel,
                right,
            } = c
            else {
                continue;
            };
            if facts.rel(*rel, bound[*left], bound[*right]) == *negated {
                continue 'outer;
            }
        }
        if assign(
            v + 1,
            q,
            facts,
            cands,
            negative,
            positive_clauses,
            neg_groups,
            bound,
            tree,
            corpus,
        ) {
            return true;
        }
    }
    bound[v] = u32::MAX;
    false
}

fn check_neg_groups(
    q: &CsQuery,
    facts: &Facts,
    neg_groups: &[(usize, Vec<&Clause>)],
    bound: &mut [u32],
    tree: &Tree,
    corpus: &Corpus,
) -> bool {
    let lex = corpus.interner().get("@lex");
    for (v, clauses) in neg_groups {
        let want = q.vars[*v].tag.as_deref().map(|t| corpus.interner().get(t));
        if want == Some(None) {
            // Tag absent anywhere: nothing can witness the negation.
            continue;
        }
        let witness = tree.preorder().any(|id| {
            let n = id.0;
            match want {
                Some(Some(sym)) if tree.node(id).name != sym => return false,
                _ => {}
            }
            bound[*v] = n;
            let all = clauses.iter().all(|c| match c {
                Clause::Rel {
                    left, rel, right, ..
                } => facts.rel(*rel, bound[*left], bound[*right]),
                Clause::HasWord { var, word, .. } => {
                    debug_assert_eq!(var, v);
                    lex.and_then(|l| tree.node(NodeId(n)).attr(l))
                        .is_some_and(|w| corpus.resolve(w) == word.as_str())
                }
            });
            bound[*v] = u32::MAX;
            all
        });
        if witness {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use lpath_model::ptb::parse_str;

    const FIG1: &str = "( (S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) \
                        (PP (Prep with) (NP (Det a) (N dog))))) (N today)) )";

    fn c(query: &str) -> usize {
        let corpus = parse_str(FIG1).unwrap();
        count(&corpus, &parse_query(query).unwrap())
    }

    #[test]
    fn basic_relations() {
        assert_eq!(c("find n:NP"), 4);
        assert_eq!(c("find n:NP, d:Det where n iDoms d"), 2);
        assert_eq!(c("find n:NP, d:Det where n doms d"), 3);
        assert_eq!(c("find d:Det, n:NP where n iDoms d"), 2);
        assert_eq!(c("find v:VP, n:N where v doms n"), 1);
    }

    #[test]
    fn precedence_relations() {
        // //V->NP equivalent: NPs immediately preceded by V.
        assert_eq!(c("find n:NP, v:V where v iPrecedes n"), 2);
        assert_eq!(c("find n:N, v:V where v precedes n"), 3);
        // terminal adjacency at word level.
        assert_eq!(c("find a:Adj, d:Det where d iPrecedes a"), 1);
    }

    #[test]
    fn sister_relations() {
        assert_eq!(c("find n:NP, v:V where v iSisterPrecedes n"), 1);
        assert_eq!(c("find n:N, d:Det where d sisterPrecedes n"), 2);
        assert_eq!(c("find n:N, a:Adj where a sameParent n"), 1);
    }

    #[test]
    fn edges_and_child_positions() {
        // //VP{/NP$} equivalent.
        assert_eq!(c("find n:NP, p:VP where p iDomsLast n"), 1);
        // //VP{//NP$} equivalent.
        assert_eq!(c("find n:NP, p:VP where p domsRightEdge n"), 2);
        assert_eq!(c("find v:V, p:VP where p domsLeftEdge v"), 1);
        assert_eq!(c("find d:Det, n:NP where n iDomsFirst d"), 2);
    }

    #[test]
    fn words() {
        assert_eq!(c("find s:S, w:* where s doms w, w hasWord saw"), 1);
        assert_eq!(c("find w:* where w hasWord dog"), 1);
        assert_eq!(c("find w:* where w hasWord missing"), 0);
        assert_eq!(c("find w:V where not w hasWord saw"), 0);
    }

    #[test]
    fn negation() {
        // //NP[not(//Det)] equivalent: only NP("I").
        assert_eq!(c("find n:NP, d:Det where not n doms d"), 1);
        // Vacuous: no ZZZ anywhere.
        assert_eq!(c("find n:NP, z:ZZZ where not n doms z"), 4);
        // Positive use of a missing tag: zero.
        assert_eq!(c("find n:NP, z:ZZZ where n doms z"), 0);
    }

    #[test]
    fn multi_clause_joins() {
        // Q4-style: N within VP following V child of that VP.
        assert_eq!(
            c("find n:N, v:V, p:VP where p iDoms v, v precedes n, p doms n"),
            2
        );
        // Without the scope clause (Q3-style): 3.
        assert_eq!(c("find n:N, v:V, p:VP where p iDoms v, v precedes n"), 3);
    }

    #[test]
    fn multiple_trees_sum() {
        let corpus = parse_str(&format!("{FIG1}\n{FIG1}")).unwrap();
        let q = parse_query("find n:NP, v:V where v iPrecedes n").unwrap();
        assert_eq!(count(&corpus, &q), 4);
    }
}
