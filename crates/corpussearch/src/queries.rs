//! The 23 evaluation queries of Figure 6(c) in the CorpusSearch-style
//! dialect, result variable first.

/// `CS_QUERIES[i]` is Q(i+1).
pub const CS_QUERIES: [&str; 23] = [
    // Q1  //S[//_[@lex=saw]]
    "find s:S, w:* where s doms w, w hasWord saw",
    // Q2  //VB->NP
    "find n:NP, v:VB where v iPrecedes n",
    // Q3  //VP/VB-->NN
    "find n:NN, v:VB, p:VP where p iDoms v, v precedes n",
    // Q4  //VP{/VB-->NN}
    "find n:NN, v:VB, p:VP where p iDoms v, v precedes n, p doms n",
    // Q5  //VP{/NP$}
    "find n:NP, p:VP where p iDomsLast n",
    // Q6  //VP{//NP$}
    "find n:NP, p:VP where p domsRightEdge n",
    // Q7  //VP[{//^VB->NP->PP$}]
    "find p:VP, v:VB, n:NP, q:PP where p domsLeftEdge v, v iPrecedes n, n iPrecedes q, p domsRightEdge q",
    // Q8  //S[//NP/ADJP]
    "find s:S, n:NP, a:ADJP where s doms a, n iDoms a",
    // Q9  //NP[not(//JJ)]
    "find n:NP, j:JJ where not n doms j",
    // Q10 //NP[->PP[//IN[@lex=of]]=>VP]
    "find n:NP, p:PP, i:IN, v:VP where n iPrecedes p, p doms i, i hasWord of, p iSisterPrecedes v",
    // Q11 //S[{//_[@lex=what]->_[@lex=building]}]
    "find s:S, a:*, b:* where s doms a, s doms b, a hasWord what, b hasWord building, a iPrecedes b",
    // Q12 //_[@lex=rapprochement]
    "find x:* where x hasWord rapprochement",
    // Q13 //_[@lex=1929]
    "find x:* where x hasWord 1929",
    // Q14 //ADVP-LOC-CLR
    "find x:ADVP-LOC-CLR",
    // Q15 //WHPP
    "find x:WHPP",
    // Q16 //RRC/PP-TMP
    "find p:PP-TMP, r:RRC where r iDoms p",
    // Q17 //UCP-PRD/ADJP-PRD
    "find a:ADJP-PRD, u:UCP-PRD where u iDoms a",
    // Q18 //NP/NP/NP/NP/NP
    "find e:NP, d:NP, c:NP, b:NP, a:NP where a iDoms b, b iDoms c, c iDoms d, d iDoms e",
    // Q19 //VP/VP/VP
    "find c:VP, b:VP, a:VP where a iDoms b, b iDoms c",
    // Q20 //PP=>SBAR
    "find s:SBAR, p:PP where p iSisterPrecedes s",
    // Q21 //ADVP=>ADJP
    "find a:ADJP, b:ADVP where b iSisterPrecedes a",
    // Q22 //NP=>NP=>NP
    "find c:NP, b:NP, a:NP where a iSisterPrecedes b, b iSisterPrecedes c",
    // Q23 //VP=>VP
    "find b:VP, a:VP where a iSisterPrecedes b",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn all_queries_parse() {
        for (i, q) in CS_QUERIES.iter().enumerate() {
            parse_query(q).unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
        }
    }

    #[test]
    fn q9_uses_a_negative_variable() {
        let q = parse_query(CS_QUERIES[8]).unwrap();
        assert!(q.is_negative(1));
    }
}
