//! The CorpusSearch-style engine: parse + full-scan evaluate.

use lpath_model::Corpus;

use crate::ast::CsQuery;
use crate::eval;
use crate::parser::{parse_query, CsParseError};

/// A thin engine wrapper holding the corpus reference. Unlike the LPath
/// and tgrep engines there is *no* build step — CorpusSearch reads the
/// treebank directly, which is exactly why every query costs a full
/// scan.
pub struct CsEngine<'c> {
    corpus: &'c Corpus,
}

impl<'c> CsEngine<'c> {
    /// Point the engine at a corpus (no preprocessing, by design).
    pub fn new(corpus: &'c Corpus) -> Self {
        CsEngine { corpus }
    }

    /// Parse a query without running it.
    pub fn parse(&self, query: &str) -> Result<CsQuery, CsParseError> {
        parse_query(query)
    }

    /// Count distinct result-variable bindings.
    pub fn count(&self, query: &str) -> Result<usize, CsParseError> {
        let q = parse_query(query)?;
        Ok(eval::count(self.corpus, &q))
    }

    /// Count a pre-parsed query.
    pub fn count_ast(&self, q: &CsQuery) -> usize {
        eval::count(self.corpus, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpath_model::ptb::parse_str;

    #[test]
    fn engine_wraps_eval() {
        let corpus =
            parse_str("( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN man)))) )").unwrap();
        let e = CsEngine::new(&corpus);
        assert_eq!(e.count("find n:NP, v:VBD where v iPrecedes n").unwrap(), 1);
        assert!(e.count("find oops").is_err());
    }
}
