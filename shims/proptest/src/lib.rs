//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates registry, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, strategies for ranges, tuples, arrays, collections,
//! weighted booleans and options, regex-shaped string patterns, the
//! [`prop_oneof!`] union, `any::<T>()`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its index and message;
//!   cases are deterministic per test (seeded from the test path), so
//!   failures reproduce exactly on re-run.
//! * **String "regexes"** support only the character-class-with-
//!   repetition shapes used here (`\PC{m,n}`-style): a printable
//!   string with length drawn from `{m,n}`.

#![forbid(unsafe_code)]
use std::sync::Arc;

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// The `PROPTEST_CASES` environment variable when set, else
        /// `default_cases` — for tests that pin a non-default baseline
        /// but should still honor the deep-sweep override.
        pub fn cases_or_env(default_cases: u32) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_cases)
        }
    }

    impl Default for Config {
        /// 256 cases, overridable through the `PROPTEST_CASES`
        /// environment variable (matching real proptest, so CI can run
        /// a deeper sweep without touching test code).
        fn default() -> Self {
            Config {
                cases: Config::cases_or_env(256),
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic case RNG (SplitMix64 seeded from the test
    /// path, so every test has its own reproducible stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the `module::test` path).
        pub fn for_test(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree: `sample`
    /// produces a plain value and failures are not shrunk.
    pub trait Strategy: Clone {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f`
        /// derives from it.
        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U + Clone,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sampler: Arc::new(move |rng: &mut TestRng| self.sample(rng)),
            }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        sampler: Arc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Arc::clone(&self.sampler),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sampler)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U::Value;
        fn sample(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Weighted choice between boxed strategies (the `prop_oneof!` macro).
    pub struct Union<V> {
        variants: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Union<V> {
        /// A union over `(weight, strategy)` pairs.
        pub fn new(variants: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { variants, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.variants {
                if pick < u64::from(*w) {
                    return s.sample(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights sum exceeded")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                // `as u64` must stay: the macro covers signed widths
                // with no `From<$t> for u64`.
                #[allow(clippy::cast_lossless)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_lossless)] // same: signed widths
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi - lo) as u64).wrapping_add(1);
                    if span == 0 {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].sample(rng))
        }
    }

    /// String pattern strategy (`"\\PC{0,80}"`-shaped): a printable
    /// string whose length is drawn from the trailing `{m,n}` repeat
    /// (default `{0,16}`).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repeat(self).unwrap_or((0, 16));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            // Mostly ASCII printables with occasional non-ASCII
            // printable code points, mirroring `\PC`.
            (0..len)
                .map(|_| {
                    if rng.below(10) == 0 {
                        char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('§')
                    } else {
                        (0x20u8 + rng.below(0x5F) as u8) as char
                    }
                })
                .collect()
        }
    }

    fn parse_repeat(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        if close <= open {
            return None;
        }
        let body = &pattern[open + 1..close];
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// `vec(element, size_range)` — a vector whose length is uniform in
    /// `size_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Copy, Clone, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// `Some` with probability `p`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { p, inner }
    }

    /// See [`of`] and [`weighted`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy per type.

    use super::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate a full-range value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }
}

/// The canonical strategy for `T` (full value range).
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// See [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.
    pub use super::bool;
    pub use super::collection;
    pub use super::option;
}

pub mod prelude {
    //! Everything tests import with `use proptest::prelude::*`.
    pub use super::any;
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// The trait must be nameable from macro expansions.
#[doc(hidden)]
pub use strategy::Strategy as __Strategy;
#[doc(hidden)]
pub type __Sampler<V> = Arc<dyn Fn(&mut test_runner::TestRng) -> V>;

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), left, right
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}\n  both: {:?}",
            format!($($fmt)*), left
        );
    }};
}

/// Define deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn holds(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' case {}/{} failed: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::for_test("weights");
        let hits = (0..1_000).filter(|_| s.sample(&mut rng)).count();
        assert!((800..1_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("strings");
        for _ in 0..200 {
            let s: String = "\\PC{0,80}".sample(&mut rng);
            assert!(s.chars().count() <= 80);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vectors_in_range(v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u32..10, 0..5))
        })) {
            prop_assert!((1..4).contains(&pair.0));
        }
    }
}
