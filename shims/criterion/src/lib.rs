//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no crates registry, so this crate
//! provides the group/bencher API surface the workspace's benches use
//! (`benchmark_group`, `sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], `iter`, [`criterion_group!`], [`criterion_main!`])
//! backed by a simple wall-clock loop: one warm-up run, then up to
//! `sample_size` timed runs bounded by `measurement_time`, reporting
//! the mean and min per benchmark. No statistics, plots or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every bench target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_millis(700),
        }
    }

    /// Register a standalone benchmark (group-less form).
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_millis(700),
        };
        group.bench_function(name, f);
    }
}

/// A named benchmark id with a parameter, `group/name/param`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{name}/{param}"),
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed runs per benchmark (upper bound here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the warm-up here is always one run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Wall-clock budget for the timed runs of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run `f` as a benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&name.to_string());
        self
    }

    /// Run `f` with `input` as a benchmark identified by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&id.rendered);
        self
    }

    /// Close the group (no-op; prints nothing).
    pub fn finish(self) {}
}

/// Times a closure over repeated runs.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once to warm up, then repeatedly until the sample count
    /// or the measurement budget is exhausted.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(f());
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<44} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        println!(
            "{label:<44} mean {:>12.6}s  min {:>12.6}s  ({} samples)",
            mean.as_secs_f64(),
            min.as_secs_f64(),
            self.samples.len()
        );
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench target functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the named groups (requires `harness = false`
/// on the bench target).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
