//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the handful of `rand 0.8` APIs the code base actually
//! uses are reimplemented here: [`rngs::SmallRng`], [`SeedableRng`] and
//! the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) —
//! not the same stream as upstream `SmallRng`, but a statistically
//! sound 64-bit PRNG, which is all the synthetic treebank generator
//! needs. Determinism per seed is the only contract callers rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (the one constructor used here).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Derive a value from one 64-bit draw.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from uniformly. Generic over
/// the output type (like upstream `rand`), so the expected result type
/// drives integer-literal inference in `gen_range(0..8)`.
pub trait SampleRange<T> {
    /// Draw a uniform value using the given 64-bit source.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // `as i128` must stay: `From<usize>` does not exist for
            // `i128`, and the macro covers every integer width.
            #[allow(clippy::cast_lossless)]
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (draw() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_lossless)] // same: no `From<usize> for i128`
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128 - lo as i128) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return (lo as i128).wrapping_add(draw() as i128) as $t;
                }
                (lo as i128 + (draw() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (here: `f64` in `[0, 1)`, full-range
    /// integers, or a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// A uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small-state deterministic PRNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.gen_range(1..=40u32);
            assert!((1..=40).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.18)).count();
        assert!((1_400..2_200).contains(&hits), "hits {hits}");
    }
}
